#include "trace/step_trace.h"

#include <gtest/gtest.h>

namespace booster::trace {
namespace {

StepEvent hist_event(std::uint64_t records, std::uint32_t fields) {
  StepEvent e;
  e.kind = StepKind::kHistogram;
  e.records = records;
  e.record_fields = fields;
  e.fields_touched = fields;
  return e;
}

TEST(StepTrace, EmptyByDefault) {
  StepTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.totals().hist_records, 0.0);
}

TEST(StepTrace, ScaledRecordsApplyScale) {
  StepTrace t(10.0);
  const auto e = hist_event(100, 4);
  EXPECT_DOUBLE_EQ(t.scaled_records(e), 1000.0);
}

TEST(StepTrace, TotalsAggregatePerKind) {
  StepTrace t;
  t.add(hist_event(100, 4));
  StepEvent part;
  part.kind = StepKind::kPartition;
  part.records = 50;
  t.add(part);
  StepEvent trav;
  trav.kind = StepKind::kTraversal;
  trav.records = 100;
  trav.avg_path_length = 3.0;
  t.add(trav);
  StepEvent split;
  split.kind = StepKind::kSplitSelect;
  split.bins_scanned = 1000;
  t.add(split);

  const auto totals = t.totals();
  EXPECT_DOUBLE_EQ(totals.hist_records, 100.0);
  EXPECT_DOUBLE_EQ(totals.record_field_updates, 400.0);
  EXPECT_DOUBLE_EQ(totals.partition_records, 50.0);
  EXPECT_DOUBLE_EQ(totals.traversal_records, 100.0);
  EXPECT_DOUBLE_EQ(totals.traversal_record_hops, 300.0);
  EXPECT_DOUBLE_EQ(totals.bins_scanned, 1000.0);
  EXPECT_EQ(totals.split_events, 1u);
}

TEST(StepTrace, RepeatScalesEverything) {
  StepTrace t;
  t.set_repeat(5.0);
  t.add(hist_event(10, 2));
  StepEvent split;
  split.kind = StepKind::kSplitSelect;
  split.bins_scanned = 100;
  t.add(split);
  const auto totals = t.totals();
  EXPECT_DOUBLE_EQ(totals.hist_records, 50.0);
  EXPECT_DOUBLE_EQ(totals.record_field_updates, 100.0);
  EXPECT_DOUBLE_EQ(totals.bins_scanned, 500.0);
}

TEST(StepTrace, ScaledByMultipliesScale) {
  StepTrace t(2.0);
  t.add(hist_event(10, 1));
  const auto scaled = t.scaled_by(10.0);
  EXPECT_DOUBLE_EQ(scaled.scale(), 20.0);
  EXPECT_DOUBLE_EQ(scaled.totals().hist_records, 200.0);
  // Original unchanged.
  EXPECT_DOUBLE_EQ(t.totals().hist_records, 20.0);
}

TEST(StepTrace, TreesFromMaxTreeIndex) {
  StepTrace t;
  auto e = hist_event(1, 1);
  e.tree = 7;
  t.add(e);
  EXPECT_EQ(t.totals().trees, 8u);
}

TEST(StepName, AllKindsNamed) {
  EXPECT_STREQ(step_name(StepKind::kHistogram), "step1-hist");
  EXPECT_STREQ(step_name(StepKind::kSplitSelect), "step2-split");
  EXPECT_STREQ(step_name(StepKind::kPartition), "step3-partition");
  EXPECT_STREQ(step_name(StepKind::kTraversal), "step5-traversal");
}

}  // namespace
}  // namespace booster::trace
