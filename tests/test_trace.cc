#include "trace/step_trace.h"

#include <gtest/gtest.h>

namespace booster::trace {
namespace {

StepEvent hist_event(std::uint64_t records, std::uint32_t fields) {
  StepEvent e;
  e.kind = StepKind::kHistogram;
  e.records = records;
  e.record_fields = fields;
  e.fields_touched = fields;
  return e;
}

TEST(StepTrace, EmptyByDefault) {
  StepTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.totals().hist_records, 0.0);
}

TEST(StepTrace, ScaledRecordsApplyScale) {
  StepTrace t(10.0);
  const auto e = hist_event(100, 4);
  EXPECT_DOUBLE_EQ(t.scaled_records(e), 1000.0);
}

TEST(StepTrace, TotalsAggregatePerKind) {
  StepTrace t;
  t.add(hist_event(100, 4));
  StepEvent part;
  part.kind = StepKind::kPartition;
  part.records = 50;
  t.add(part);
  StepEvent trav;
  trav.kind = StepKind::kTraversal;
  trav.records = 100;
  trav.avg_path_length = 3.0;
  t.add(trav);
  StepEvent split;
  split.kind = StepKind::kSplitSelect;
  split.bins_scanned = 1000;
  t.add(split);

  const auto totals = t.totals();
  EXPECT_DOUBLE_EQ(totals.hist_records, 100.0);
  EXPECT_DOUBLE_EQ(totals.record_field_updates, 400.0);
  EXPECT_DOUBLE_EQ(totals.partition_records, 50.0);
  EXPECT_DOUBLE_EQ(totals.traversal_records, 100.0);
  EXPECT_DOUBLE_EQ(totals.traversal_record_hops, 300.0);
  EXPECT_DOUBLE_EQ(totals.bins_scanned, 1000.0);
  EXPECT_EQ(totals.split_events, 1u);
}

TEST(StepTrace, RepeatScalesEverything) {
  StepTrace t;
  t.set_repeat(5.0);
  t.add(hist_event(10, 2));
  StepEvent split;
  split.kind = StepKind::kSplitSelect;
  split.bins_scanned = 100;
  t.add(split);
  const auto totals = t.totals();
  EXPECT_DOUBLE_EQ(totals.hist_records, 50.0);
  EXPECT_DOUBLE_EQ(totals.record_field_updates, 100.0);
  EXPECT_DOUBLE_EQ(totals.bins_scanned, 500.0);
}

TEST(StepTrace, ScaledByMultipliesScale) {
  StepTrace t(2.0);
  t.add(hist_event(10, 1));
  const auto scaled = t.scaled_by(10.0);
  EXPECT_DOUBLE_EQ(scaled.scale(), 20.0);
  EXPECT_DOUBLE_EQ(scaled.totals().hist_records, 200.0);
  // Original unchanged.
  EXPECT_DOUBLE_EQ(t.totals().hist_records, 20.0);
}

TEST(StepTrace, TreesFromMaxTreeIndex) {
  StepTrace t;
  auto e = hist_event(1, 1);
  e.tree = 7;
  t.add(e);
  EXPECT_EQ(t.totals().trees, 8u);
}

TEST(StepTrace, ReplayClassesGroupByKindDepthAndOctave) {
  StepTrace t(10.0);  // scale 10: records below are in simulated units
  // Two similar depth-1 histogram events (same octave after scaling), one
  // much smaller one (different octave), a partition, and a host event
  // (must be excluded).
  auto a = hist_event(60, 4);
  a.depth = 1;
  auto b = hist_event(100, 4);
  b.depth = 1;
  auto c = hist_event(3, 4);
  c.depth = 1;
  t.add(a);
  t.add(b);
  t.add(c);
  StepEvent p;
  p.kind = StepKind::kPartition;
  p.depth = 0;
  p.records = 220;
  t.add(p);
  StepEvent s;
  s.kind = StepKind::kSplitSelect;
  s.bins_scanned = 99;
  t.add(s);

  const auto classes = t.replay_classes();
  ASSERT_EQ(classes.size(), 3u);
  // Sorted by (kind, depth, octave): the two big histogram events merge
  // (600 and 1000 scaled records share octave 9), the 30-record event is
  // its own class, the partition is separate, the host event is absent.
  EXPECT_EQ(classes[0].kind, StepKind::kHistogram);
  EXPECT_EQ(classes[0].events, 1u);
  EXPECT_DOUBLE_EQ(classes[0].records, 30.0);
  EXPECT_EQ(classes[1].kind, StepKind::kHistogram);
  EXPECT_EQ(classes[1].events, 2u);
  EXPECT_DOUBLE_EQ(classes[1].records, 1600.0);
  EXPECT_DOUBLE_EQ(classes[1].avg_records, 800.0);
  EXPECT_DOUBLE_EQ(classes[1].avg_fields_touched, 4.0);
  EXPECT_EQ(classes[2].kind, StepKind::kPartition);
  EXPECT_DOUBLE_EQ(classes[2].records, 2200.0);
}

TEST(StepTrace, ReplayClassesIgnoreRepeatLikePerEventCosting) {
  StepTrace t(1.0);
  t.add(hist_event(500, 2));
  t.set_repeat(4.0);
  const auto classes = t.replay_classes();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_DOUBLE_EQ(classes[0].records, 500.0);  // repeat applied by models
}

TEST(StepName, AllKindsNamed) {
  EXPECT_STREQ(step_name(StepKind::kHistogram), "step1-hist");
  EXPECT_STREQ(step_name(StepKind::kSplitSelect), "step2-split");
  EXPECT_STREQ(step_name(StepKind::kPartition), "step3-partition");
  EXPECT_STREQ(step_name(StepKind::kTraversal), "step5-traversal");
}

}  // namespace
}  // namespace booster::trace
