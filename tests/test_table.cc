#include "util/table.h"

#include <gtest/gtest.h>

namespace booster::util {
namespace {

TEST(Table, RendersHeaderAndRows) {
  Table t({"a", "bb"});
  t.add_row({"x", "y"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("| a"), std::string::npos);
  EXPECT_NE(s.find("| x"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, ColumnsAlignToWidestCell) {
  Table t({"h"});
  t.add_row({"longvalue"});
  const std::string s = t.to_string();
  // Header cell must be padded to the row's width.
  EXPECT_NE(s.find("| h         |"), std::string::npos);
  EXPECT_NE(s.find("| longvalue |"), std::string::npos);
}

TEST(Fmt, Digits) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
}

TEST(FmtX, Multiplier) { EXPECT_EQ(fmt_x(11.42), "11.4x"); }

TEST(FmtPct, Percentage) { EXPECT_EQ(fmt_pct(0.982), "98.2%"); }

TEST(FmtBytes, UnitSelection) {
  EXPECT_EQ(fmt_bytes(512), "512.0 B");
  EXPECT_EQ(fmt_bytes(2048), "2.0 KB");
  EXPECT_EQ(fmt_bytes(6.4 * 1024 * 1024), "6.4 MB");
}

TEST(FmtTime, UnitSelection) {
  EXPECT_EQ(fmt_time(120.0), "2.0 min");
  EXPECT_EQ(fmt_time(2.5), "2.50 s");
  EXPECT_EQ(fmt_time(0.0025), "2.50 ms");
  EXPECT_EQ(fmt_time(2.5e-6), "2.50 us");
}

}  // namespace
}  // namespace booster::util
