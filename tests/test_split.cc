#include "gbdt/split.h"

#include <gtest/gtest.h>

#include <numeric>

#include "gbdt/binning.h"
#include "util/rng.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

/// Builds a binned dataset with one numeric field whose bin per record is
/// prescribed, so histogram contents are fully controlled.
BinnedDataset dataset_from_bins(const std::vector<BinIndex>& bins,
                                std::uint32_t num_bins) {
  Dataset d;
  d.add_numeric_field("x");
  d.resize(bins.size());
  // Values 0..num_bins-2 -> bins 1..num_bins-1 after quantile binning of
  // the full integer range; missing (bin 0) encoded as NaN.
  for (std::size_t r = 0; r < bins.size(); ++r) {
    if (bins[r] == 0) {
      d.set_numeric(0, r, std::numeric_limits<float>::quiet_NaN());
    } else {
      d.set_numeric(0, r, static_cast<float>(bins[r] - 1));
    }
  }
  BinningConfig cfg;
  cfg.max_numeric_bins = num_bins - 1;
  auto binned = Binner(cfg).bin(d);
  return binned;
}

Histogram build_hist(const BinnedDataset& data,
                     const std::vector<GradientPair>& grads) {
  std::vector<std::uint32_t> rows(data.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  Histogram hist(data);
  hist.build(data, rows, grads);
  return hist;
}

TEST(LeafWeight, NewtonStep) {
  BinStats t{10.0, 5.0, 9.0};
  EXPECT_DOUBLE_EQ(leaf_weight(t, 1.0), -0.5);  // -G/(H+lambda)
}

TEST(BucketScore, Formula) {
  BinStats t{10.0, 4.0, 3.0};
  EXPECT_DOUBLE_EQ(bucket_score(t, 1.0), 4.0);  // G^2/(H+lambda)
}

TEST(SplitFinder, FindsObviousNumericSplit) {
  // Records in low bins have g=+1, high bins g=-1: the best split is at the
  // boundary.
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 100; ++i) {
    bins.push_back(i < 50 ? 1 : 4);
    grads.push_back({i < 50 ? 1.0f : -1.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 5);
  const auto hist = build_hist(data, grads);
  std::uint64_t scanned = 0;
  const auto split = SplitFinder().find_best(hist, data, &scanned);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->field, 0u);
  EXPECT_EQ(split->kind, PredicateKind::kNumericLE);
  EXPECT_GT(split->gain, 0.0);
  EXPECT_DOUBLE_EQ(split->left.count, 50.0);
  EXPECT_DOUBLE_EQ(split->right.count, 50.0);
  EXPECT_GT(scanned, 0u);
}

TEST(SplitFinder, GainMatchesHandComputation) {
  // Two value bins, equal counts: GL=+8 (h=4), GR=-8 (h=4), lambda=1.
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 8; ++i) {
    bins.push_back(i < 4 ? 1 : 2);
    grads.push_back({i < 4 ? 2.0f : -2.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 3);
  const auto hist = build_hist(data, grads);
  SplitConfig cfg;
  cfg.lambda = 1.0;
  cfg.gamma = 0.0;
  const auto split = SplitFinder(cfg).find_best(hist, data);
  ASSERT_TRUE(split.has_value());
  // gain = 0.5 * (64/5 + 64/5 - 0/9) = 12.8
  EXPECT_NEAR(split->gain, 12.8, 1e-9);
}

TEST(SplitFinder, GammaSubtractsFromGain) {
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 8; ++i) {
    bins.push_back(i < 4 ? 1 : 2);
    grads.push_back({i < 4 ? 2.0f : -2.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 3);
  const auto hist = build_hist(data, grads);
  SplitConfig cfg;
  cfg.gamma = 1.0;
  const auto split = SplitFinder(cfg).find_best(hist, data);
  ASSERT_TRUE(split.has_value());
  EXPECT_NEAR(split->gain, 11.8, 1e-9);
}

TEST(SplitFinder, RejectsWhenGammaExceedsImprovement) {
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 8; ++i) {
    bins.push_back(i < 4 ? 1 : 2);
    grads.push_back({i < 4 ? 2.0f : -2.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 3);
  const auto hist = build_hist(data, grads);
  SplitConfig cfg;
  cfg.gamma = 100.0;  // larger than any achievable improvement
  EXPECT_FALSE(SplitFinder(cfg).find_best(hist, data).has_value());
}

TEST(SplitFinder, MinChildWeightBlocksTinyChildren) {
  // One record in bin 1, many in bin 2: a split isolating the single
  // record violates min_child_weight.
  std::vector<BinIndex> bins{1};
  std::vector<GradientPair> grads{{5.0f, 0.5f}};
  for (int i = 0; i < 50; ++i) {
    bins.push_back(2);
    grads.push_back({-0.1f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 3);
  const auto hist = build_hist(data, grads);
  SplitConfig cfg;
  cfg.min_child_weight = 2.0;  // the lone record has h=0.5 < 2.0
  EXPECT_FALSE(SplitFinder(cfg).find_best(hist, data).has_value());
}

TEST(SplitFinder, MissingValuesFollowBetterDirection) {
  // Missing records carry strong positive gradients; the positive side is
  // the low bins, so default_left should be true.
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 40; ++i) {
    bins.push_back(i < 20 ? 1 : 4);
    grads.push_back({i < 20 ? 1.0f : -1.0f, 1.0f});
  }
  for (int i = 0; i < 10; ++i) {
    bins.push_back(0);  // missing
    grads.push_back({1.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 5);
  const auto hist = build_hist(data, grads);
  const auto split = SplitFinder().find_best(hist, data);
  ASSERT_TRUE(split.has_value());
  EXPECT_TRUE(split->default_left);
  // And flipping the missing gradients should flip the default.
  std::vector<GradientPair> flipped = grads;
  for (std::size_t i = 40; i < flipped.size(); ++i) flipped[i].g = -1.0f;
  const auto hist2 = build_hist(data, flipped);
  const auto split2 = SplitFinder().find_best(hist2, data);
  ASSERT_TRUE(split2.has_value());
  EXPECT_FALSE(split2->default_left);
}

TEST(SplitFinder, CategoricalEqualitySplit) {
  // Category 3 (bin 4) carries all the positive gradient; best split must
  // be "category == 3".
  Dataset d;
  d.add_categorical_field("c", 5);
  d.resize(100);
  std::vector<GradientPair> grads(100);
  for (std::uint64_t r = 0; r < 100; ++r) {
    const bool special = r < 10;
    d.set_categorical(0, r, special ? 3 : static_cast<std::int32_t>(r % 3));
    grads[r] = {special ? 3.0f : -0.2f, 1.0f};
  }
  const auto data = Binner().bin(d);
  const auto hist = build_hist(data, grads);
  const auto split = SplitFinder().find_best(hist, data);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->kind, PredicateKind::kCategoryEqual);
  EXPECT_EQ(split->threshold_bin, 4u);  // category 3 -> bin 4
  EXPECT_DOUBLE_EQ(split->left.count, 10.0);
}

TEST(SplitFinder, LeftPlusRightEqualsTotals) {
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 60; ++i) {
    bins.push_back(static_cast<BinIndex>(1 + (i % 4)));
    grads.push_back({static_cast<float>((i % 7) - 3), 1.0f});
  }
  const auto data = dataset_from_bins(bins, 5);
  const auto hist = build_hist(data, grads);
  const auto split = SplitFinder().find_best(hist, data);
  ASSERT_TRUE(split.has_value());
  const auto totals = hist.totals();
  EXPECT_DOUBLE_EQ(split->left.count + split->right.count, totals.count);
  EXPECT_NEAR(split->left.g + split->right.g, totals.g, 1e-9);
  EXPECT_NEAR(split->left.h + split->right.h, totals.h, 1e-9);
}

TEST(SplitFinder, BinsScannedCountsAllFields) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 7);
  d.resize(50);
  for (std::uint64_t r = 0; r < 50; ++r) {
    d.set_numeric(0, r, static_cast<float>(r % 10));
    d.set_categorical(1, r, static_cast<std::int32_t>(r % 7));
  }
  const auto data = Binner().bin(d);
  std::vector<GradientPair> grads(50, {1.0f, 1.0f});
  const auto hist = build_hist(data, grads);
  std::uint64_t scanned = 0;
  (void)SplitFinder().find_best(hist, data, &scanned);
  EXPECT_EQ(scanned, data.total_bins());
}

TEST(SplitFinder, UniformGradientsYieldNoSplit) {
  // All records identical gradients: no split improves the objective.
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 64; ++i) {
    bins.push_back(static_cast<BinIndex>(1 + (i % 4)));
    grads.push_back({1.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 5);
  const auto hist = build_hist(data, grads);
  EXPECT_FALSE(SplitFinder().find_best(hist, data).has_value());
}

// --- Threaded split scan: 1-thread-equivalence property. ---------------

TEST(SplitFinderThreaded, IdenticalToSerialAtAnyThreadCount) {
  // Property: the parallel field scan returns bit-identical results to the
  // serial scan at every thread count -- same split (field, kind,
  // threshold, default direction, exact gain and child stats) and the same
  // bins_scanned -- over mixed numeric/categorical workloads with random
  // gradients.
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
    workloads::DatasetSpec spec;
    spec.name = "split-prop";
    spec.nominal_records = 4000;
    spec.numeric_fields = 6;
    spec.categorical_cardinalities = {40, 17, 5};
    spec.loss = "logistic";
    spec.label_structure = workloads::LabelStructure::kCategorical;
    const auto data = Binner().bin(workloads::synthesize(spec, 4000, seed));

    util::Rng rng(seed * 977);
    std::vector<GradientPair> grads(data.num_records());
    for (auto& g : grads) {
      g = {static_cast<float>(rng.uniform(-1.0, 1.0)),
           static_cast<float>(rng.uniform(0.1, 1.0))};
    }
    const auto hist = build_hist(data, grads);

    const SplitFinder finder;
    std::uint64_t serial_scanned = 0;
    const auto serial = finder.find_best(hist, data, &serial_scanned);
    ASSERT_TRUE(serial.has_value());

    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      util::ThreadPool pool(threads);
      std::uint64_t scanned = 0;
      const auto parallel = finder.find_best(hist, data, &pool, &scanned);
      ASSERT_TRUE(parallel.has_value()) << threads << " threads";
      EXPECT_EQ(parallel->field, serial->field) << threads << " threads";
      EXPECT_EQ(parallel->kind, serial->kind);
      EXPECT_EQ(parallel->threshold_bin, serial->threshold_bin);
      EXPECT_EQ(parallel->default_left, serial->default_left);
      EXPECT_DOUBLE_EQ(parallel->gain, serial->gain);
      EXPECT_DOUBLE_EQ(parallel->left.g, serial->left.g);
      EXPECT_DOUBLE_EQ(parallel->left.h, serial->left.h);
      EXPECT_DOUBLE_EQ(parallel->left.count, serial->left.count);
      EXPECT_DOUBLE_EQ(parallel->right.g, serial->right.g);
      EXPECT_EQ(scanned, serial_scanned) << threads << " threads";
    }
  }
}

TEST(SplitFinderThreaded, BinChunkedScanMatchesSerialOnDominantField) {
  // ROADMAP "chunk by bins": when one huge categorical field holds most of
  // the histogram's bins, field-granular chunks would serialize into that
  // field's chunk, so the scan switches to bin-granular chunks -- numeric
  // fields entered mid-chunk replay their left-prefix accumulation, and
  // the chunk-order first-max merge must still pin the serial scan's
  // result bit for bit at every thread count.
  for (const std::uint64_t seed : {3ULL, 19ULL}) {
    workloads::DatasetSpec spec;
    spec.name = "skewed";
    spec.nominal_records = 6000;
    spec.numeric_fields = 2;
    // One dominating categorical field (~1800 bins, far more than every
    // other field combined) plus a small one.
    spec.categorical_cardinalities = {1800, 6};
    spec.categorical_skew = 1.05;  // flat-ish: most categories populated
    spec.missing_rate = 0.05;
    spec.loss = "logistic";
    const auto data = Binner().bin(workloads::synthesize(spec, 6000, seed));

    // The dominant field must actually dominate the bin space, otherwise
    // this test exercises nothing.
    ASSERT_GT(data.max_bins_per_field() * 2, data.total_bins());

    util::Rng rng(seed * 131);
    std::vector<GradientPair> grads(data.num_records());
    for (auto& g : grads) {
      g = {static_cast<float>(rng.uniform(-1.0, 1.0)),
           static_cast<float>(rng.uniform(0.1, 1.0))};
    }
    const auto hist = build_hist(data, grads);

    const SplitFinder finder;
    std::uint64_t serial_scanned = 0;
    const auto serial = finder.find_best(hist, data, &serial_scanned);
    ASSERT_TRUE(serial.has_value());

    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
      util::ThreadPool pool(threads);
      std::uint64_t scanned = 0;
      const auto parallel = finder.find_best(hist, data, &pool, &scanned);
      ASSERT_TRUE(parallel.has_value()) << threads << " threads";
      EXPECT_EQ(parallel->field, serial->field) << threads << " threads";
      EXPECT_EQ(parallel->kind, serial->kind) << threads << " threads";
      EXPECT_EQ(parallel->threshold_bin, serial->threshold_bin)
          << threads << " threads";
      EXPECT_EQ(parallel->default_left, serial->default_left)
          << threads << " threads";
      EXPECT_EQ(parallel->gain, serial->gain) << threads << " threads";
      EXPECT_EQ(parallel->left.g, serial->left.g) << threads << " threads";
      EXPECT_EQ(parallel->left.h, serial->left.h) << threads << " threads";
      EXPECT_EQ(parallel->left.count, serial->left.count)
          << threads << " threads";
      EXPECT_EQ(parallel->right.g, serial->right.g) << threads << " threads";
      EXPECT_EQ(scanned, serial_scanned) << threads << " threads";
    }
  }
}

TEST(SplitFinderThreaded, BinChunkedScanEngagesWithTooFewFieldsToChunk) {
  // Two fields, one of them huge: field-granular chunking cannot
  // parallelize at all (num_chunks(2, grain=2) == 1), so this histogram
  // reaches the bin-granular path directly -- and must still match the
  // serial scan exactly.
  workloads::DatasetSpec spec;
  spec.name = "two-field";
  spec.nominal_records = 5000;
  spec.numeric_fields = 1;
  spec.categorical_cardinalities = {2000};
  spec.categorical_skew = 1.05;
  spec.loss = "logistic";
  const auto data = Binner().bin(workloads::synthesize(spec, 5000, 77));
  ASSERT_EQ(data.num_fields(), 2u);
  ASSERT_GT(data.max_bins_per_field() * 2, data.total_bins());

  util::Rng rng(779);
  std::vector<GradientPair> grads(data.num_records());
  for (auto& g : grads) {
    g = {static_cast<float>(rng.uniform(-1.0, 1.0)),
         static_cast<float>(rng.uniform(0.1, 1.0))};
  }
  const auto hist = build_hist(data, grads);

  const SplitFinder finder;
  std::uint64_t serial_scanned = 0;
  const auto serial = finder.find_best(hist, data, &serial_scanned);
  ASSERT_TRUE(serial.has_value());

  for (const unsigned threads : {2u, 8u}) {
    util::ThreadPool pool(threads);
    std::uint64_t scanned = 0;
    const auto parallel = finder.find_best(hist, data, &pool, &scanned);
    ASSERT_TRUE(parallel.has_value()) << threads << " threads";
    EXPECT_EQ(parallel->field, serial->field) << threads << " threads";
    EXPECT_EQ(parallel->threshold_bin, serial->threshold_bin)
        << threads << " threads";
    EXPECT_EQ(parallel->gain, serial->gain) << threads << " threads";
    EXPECT_EQ(parallel->left.count, serial->left.count)
        << threads << " threads";
    EXPECT_EQ(scanned, serial_scanned) << threads << " threads";
  }
}

// --- SIMD prefix scan: dispatch-level bit-identity. ---------------------

TEST(SplitFinderSimd, FindBestIdenticalAcrossDispatchLevels) {
  // The numeric left-bucket accumulation runs through the simd prefix_sum3
  // kernel. Wide levels may reassociate the prefix additions, but every
  // operand is exact on the 2^-24 quantized grid, so the chosen split --
  // gain, child stats, tie-breaking, everything -- must be bit-identical
  // at every dispatch level this binary carries, on both the serial and
  // the threaded scan paths.
  namespace simd = booster::util::simd;
  for (const std::uint64_t seed : {5ULL, 23ULL}) {
    workloads::DatasetSpec spec;
    spec.name = "simd-split";
    spec.nominal_records = 4000;
    spec.numeric_fields = 7;
    spec.categorical_cardinalities = {30, 9};
    spec.missing_rate = 0.03;
    spec.loss = "logistic";
    const auto data = Binner().bin(workloads::synthesize(spec, 4000, seed));

    util::Rng rng(seed * 313);
    std::vector<GradientPair> grads(data.num_records());
    for (auto& g : grads) {
      g = {static_cast<float>(rng.uniform(-1.0, 1.0)),
           static_cast<float>(rng.uniform(0.1, 1.0))};
    }
    const auto hist = build_hist(data, grads);

    const SplitFinder finder;
    std::optional<SplitInfo> reference;
    std::uint64_t reference_scanned = 0;
    {
      simd::ScopedLevelForTesting scalar(simd::Level::kScalar);
      reference = finder.find_best(hist, data, &reference_scanned);
    }
    ASSERT_TRUE(reference.has_value());

    for (const simd::Level level :
         {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
      if (level > simd::detected()) continue;
      simd::ScopedLevelForTesting scoped(level);
      util::ThreadPool pool(3);
      for (util::ThreadPool* p : {static_cast<util::ThreadPool*>(nullptr),
                                  &pool}) {
        std::uint64_t scanned = 0;
        const auto split = finder.find_best(hist, data, p, &scanned);
        ASSERT_TRUE(split.has_value()) << simd::level_name(level);
        EXPECT_EQ(split->field, reference->field) << simd::level_name(level);
        EXPECT_EQ(split->kind, reference->kind) << simd::level_name(level);
        EXPECT_EQ(split->threshold_bin, reference->threshold_bin)
            << simd::level_name(level);
        EXPECT_EQ(split->default_left, reference->default_left)
            << simd::level_name(level);
        EXPECT_EQ(split->gain, reference->gain) << simd::level_name(level);
        EXPECT_EQ(split->left.count, reference->left.count)
            << simd::level_name(level);
        EXPECT_EQ(split->left.g, reference->left.g) << simd::level_name(level);
        EXPECT_EQ(split->left.h, reference->left.h) << simd::level_name(level);
        EXPECT_EQ(split->right.g, reference->right.g)
            << simd::level_name(level);
        EXPECT_EQ(split->right.h, reference->right.h)
            << simd::level_name(level);
        EXPECT_EQ(scanned, reference_scanned) << simd::level_name(level);
      }
    }
  }
}

TEST(SplitFinderThreaded, NoSplitAgreesAcrossThreadCounts) {
  std::vector<BinIndex> bins;
  std::vector<GradientPair> grads;
  for (int i = 0; i < 64; ++i) {
    bins.push_back(static_cast<BinIndex>(1 + (i % 4)));
    grads.push_back({1.0f, 1.0f});
  }
  const auto data = dataset_from_bins(bins, 5);
  const auto hist = build_hist(data, grads);
  for (const unsigned threads : {1u, 4u}) {
    util::ThreadPool pool(threads);
    EXPECT_FALSE(SplitFinder().find_best(hist, data, &pool).has_value());
  }
}

}  // namespace
}  // namespace booster::gbdt
