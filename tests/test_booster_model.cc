#include "core/booster_model.h"

#include <gtest/gtest.h>

#include "workloads/runner.h"

namespace booster::core {
namespace {

using trace::StepKind;

const workloads::WorkloadResult& higgs() {
  static const auto w = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 6000;
    cfg.sim_trees = 6;
    return workloads::run_workload(workloads::spec_by_name("Higgs"), cfg);
  }();
  return w;
}

const workloads::WorkloadResult& allstate() {
  static const auto w = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 6000;
    cfg.sim_trees = 6;
    return workloads::run_workload(workloads::spec_by_name("Allstate"), cfg);
  }();
  return w;
}

TEST(BoosterModel, AllStepsHavePositiveTime) {
  const BoosterModel model;
  const auto b = model.train_cost(higgs().trace, higgs().info);
  EXPECT_GT(b[StepKind::kHistogram], 0.0);
  EXPECT_GT(b[StepKind::kSplitSelect], 0.0);
  EXPECT_GT(b[StepKind::kPartition], 0.0);
  EXPECT_GT(b[StepKind::kTraversal], 0.0);
}

TEST(BoosterModel, ColumnFormatAcceleratesSteps3And5) {
  BoosterConfig with = {};
  BoosterConfig without = {};
  without.redundant_column_format = false;
  const BoosterModel m_with(with);
  const BoosterModel m_without(without);
  const auto a = m_with.train_cost(higgs().trace, higgs().info);
  const auto b = m_without.train_cost(higgs().trace, higgs().info);
  EXPECT_LT(a[StepKind::kPartition], b[StepKind::kPartition]);
  EXPECT_LT(a[StepKind::kTraversal], b[StepKind::kTraversal]);
  // Step 1 is format-independent (whole records either way).
  EXPECT_DOUBLE_EQ(a[StepKind::kHistogram], b[StepKind::kHistogram]);
}

TEST(BoosterModel, GroupByFieldNoWorseThanNaive) {
  BoosterConfig grouped = {};
  BoosterConfig naive = {};
  naive.group_by_field_mapping = false;
  for (const auto* w : {&higgs(), &allstate()}) {
    const auto a = BoosterModel(grouped).train_cost(w->trace, w->info);
    const auto b = BoosterModel(naive).train_cost(w->trace, w->info);
    EXPECT_LE(a[StepKind::kHistogram], b[StepKind::kHistogram] * (1 + 1e-9));
  }
  // For the categorical dataset the improvement must be strict.
  const auto a = BoosterModel(grouped).train_cost(allstate().trace, allstate().info);
  const auto b = BoosterModel(naive).train_cost(allstate().trace, allstate().info);
  EXPECT_LT(a[StepKind::kHistogram], b[StepKind::kHistogram]);
}

TEST(BoosterModel, TenXRecordsScalesAcceleratedStepsLinearly) {
  const BoosterModel model;
  const auto base = model.train_cost(higgs().trace, higgs().info);
  auto scaled_trace = higgs().trace.scaled_by(10.0);
  auto info10 = higgs().info;
  info10.nominal_records *= 10;
  const auto scaled = model.train_cost(scaled_trace, info10);
  // Accelerated steps grow ~10x (within 20%: fill overheads amortize).
  for (const auto kind :
       {StepKind::kHistogram, StepKind::kPartition, StepKind::kTraversal}) {
    EXPECT_GT(scaled[kind], 8.0 * base[kind]);
    EXPECT_LT(scaled[kind], 10.5 * base[kind]);
  }
  // Step 2 does not scale with records at all.
  EXPECT_DOUBLE_EQ(scaled[StepKind::kSplitSelect],
                   base[StepKind::kSplitSelect]);
}

TEST(BoosterModel, HigherBandwidthNeverSlower) {
  BoosterConfig slow = {};
  slow.bandwidth = {100e9, 60e9, 40e9, 110e9};
  BoosterConfig fast = {};
  fast.bandwidth = {400e9, 240e9, 160e9, 440e9};
  const auto a = BoosterModel(fast).train_cost(higgs().trace, higgs().info);
  const auto b = BoosterModel(slow).train_cost(higgs().trace, higgs().info);
  EXPECT_LE(a.total(), b.total());
}

TEST(BoosterModel, MappingForUsesConfigStrategy) {
  BoosterConfig naive = {};
  naive.group_by_field_mapping = false;
  EXPECT_EQ(BoosterModel(naive).mapping_for(allstate().info).strategy,
            MappingStrategy::kNaivePack);
  EXPECT_EQ(BoosterModel().mapping_for(allstate().info).strategy,
            MappingStrategy::kGroupByField);
}

TEST(BoosterModel, InferenceDependsOnMaxDepthNotAvgPath) {
  const BoosterModel model;
  perf::InferenceSpec deep;
  deep.records = 1e6;
  deep.trees = 500;
  deep.max_depth = 6;
  deep.avg_path_length = 2.0;  // shallow average
  deep.record_bytes = 28;
  perf::InferenceSpec same = deep;
  same.avg_path_length = 6.0;  // deep average, same max
  EXPECT_DOUBLE_EQ(model.inference_cost(deep), model.inference_cost(same));

  perf::InferenceSpec shallower = deep;
  shallower.max_depth = 3;
  EXPECT_LT(model.inference_cost(shallower), model.inference_cost(deep));
}

TEST(BoosterModel, InferenceReplicasBoundThroughput) {
  BoosterConfig cfg;
  cfg.inference_bus = 3000;
  const BoosterModel model(cfg);
  perf::InferenceSpec spec;
  spec.records = 1e7;
  spec.trees = 500;  // 6 replicas
  spec.max_depth = 6;
  spec.avg_path_length = 6.0;
  spec.record_bytes = 28;
  const double six_replicas = model.inference_cost(spec);
  spec.trees = 1500;  // only 2 replicas
  const double two_replicas = model.inference_cost(spec);
  EXPECT_GT(two_replicas, six_replicas);
}

TEST(BoosterModel, ActivityScalesWithRepeat) {
  const BoosterModel model;
  auto trace1 = higgs().trace;
  trace1.set_repeat(1.0);
  auto trace2 = higgs().trace;
  trace2.set_repeat(2.0);
  const auto a = model.train_activity(trace1, higgs().info);
  const auto b = model.train_activity(trace2, higgs().info);
  EXPECT_NEAR(b.sram_accesses, 2.0 * a.sram_accesses, 1e-3 * a.sram_accesses);
  EXPECT_NEAR(b.dram_bytes, 2.0 * a.dram_bytes, 1e-3 * a.dram_bytes);
}

TEST(BoosterModel, SramEnergyNormIsTwoKbClass) {
  const BoosterModel model;
  const auto act = model.train_activity(higgs().trace, higgs().info);
  EXPECT_DOUBLE_EQ(act.sram_energy_per_access_norm, 0.71);  // Table V
}

TEST(BoosterConfig, DerivedQuantities) {
  BoosterConfig cfg;
  EXPECT_EQ(cfg.num_bus(), 3200u);
  EXPECT_EQ(cfg.sram_bins(), 256u);
  EXPECT_EQ(cfg.total_sram_bytes(), 3200u * 2048u);
}

// Sweep: BU count up, training time never up.
class BusSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BusSweep, MoreClustersNeverSlower) {
  BoosterConfig small = {};
  small.clusters = GetParam();
  BoosterConfig big = {};
  big.clusters = GetParam() * 2;
  const auto a = BoosterModel(big).train_cost(higgs().trace, higgs().info);
  const auto b = BoosterModel(small).train_cost(higgs().trace, higgs().info);
  EXPECT_LE(a.total(), b.total() * (1 + 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Clusters, BusSweep,
                         ::testing::Values(5u, 10u, 25u, 50u));

}  // namespace
}  // namespace booster::core
