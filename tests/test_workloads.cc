#include <gtest/gtest.h>

#include <cmath>

#include "gbdt/binning.h"
#include "workloads/runner.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace booster::workloads {
namespace {

TEST(Specs, TableThreeCharacteristics) {
  // The generators must match the paper's Table III schema statistics.
  const auto specs = paper_datasets();
  ASSERT_EQ(specs.size(), 5u);

  const auto& iot = specs[0];
  EXPECT_EQ(iot.name, "IoT");
  EXPECT_EQ(iot.nominal_records, 7'000'000u);
  EXPECT_EQ(iot.num_fields(), 115u);
  EXPECT_EQ(iot.onehot_features(), 115u);

  const auto& higgs = specs[1];
  EXPECT_EQ(higgs.nominal_records, 10'000'000u);
  EXPECT_EQ(higgs.num_fields(), 28u);
  EXPECT_EQ(higgs.onehot_features(), 28u);
  EXPECT_EQ(higgs.ir_copies, 271);

  const auto& allstate = specs[2];
  EXPECT_EQ(allstate.num_fields(), 32u);
  EXPECT_EQ(allstate.categorical_cardinalities.size(), 16u);
  EXPECT_EQ(allstate.onehot_features(), 4232u);

  const auto& mq = specs[3];
  EXPECT_EQ(mq.nominal_records, 1'000'000u);
  EXPECT_EQ(mq.num_fields(), 46u);
  EXPECT_EQ(mq.ir_copies, 179);
  EXPECT_EQ(mq.loss, "ranking");

  const auto& flight = specs[4];
  EXPECT_EQ(flight.num_fields(), 8u);
  EXPECT_EQ(flight.categorical_cardinalities.size(), 7u);
  EXPECT_EQ(flight.onehot_features(), 666u);
}

TEST(Specs, LookupByName) {
  EXPECT_EQ(spec_by_name("Higgs").name, "Higgs");
  EXPECT_EQ(spec_by_name("Flight").num_fields(), 8u);
}

TEST(Synth, DeterministicGivenSeed) {
  const auto spec = spec_by_name("Higgs");
  const auto a = synthesize(spec, 500, 7);
  const auto b = synthesize(spec, 500, 7);
  for (std::uint64_t r = 0; r < 500; ++r) {
    for (std::uint32_t f = 0; f < a.num_fields(); ++f) {
      const float va = a.numeric_value(f, r);
      const float vb = b.numeric_value(f, r);
      EXPECT_TRUE((std::isnan(va) && std::isnan(vb)) || va == vb);
    }
    EXPECT_EQ(a.label(r), b.label(r));
  }
}

TEST(Synth, DifferentSeedsDiffer) {
  const auto spec = spec_by_name("Higgs");
  const auto a = synthesize(spec, 200, 1);
  const auto b = synthesize(spec, 200, 2);
  int diffs = 0;
  for (std::uint64_t r = 0; r < 200; ++r) {
    if (a.numeric_value(0, r) != b.numeric_value(0, r)) ++diffs;
  }
  EXPECT_GT(diffs, 150);
}

TEST(Synth, MissingRateApproximatelyHonored) {
  auto spec = spec_by_name("Allstate");
  spec.missing_rate = 0.2;
  const auto data = synthesize(spec, 5000, 3);
  std::uint64_t missing = 0;
  std::uint64_t total = 0;
  for (std::uint64_t r = 0; r < data.num_records(); ++r) {
    for (std::uint32_t f = 0; f < spec.numeric_fields; ++f) {
      missing += std::isnan(data.numeric_value(f, r)) ? 1 : 0;
      ++total;
    }
  }
  EXPECT_NEAR(static_cast<double>(missing) / total, 0.2, 0.02);
}

TEST(Synth, CategoricalSkewTopHeavy) {
  const auto spec = spec_by_name("Flight");
  const auto data = synthesize(spec, 20000, 5);
  const std::uint32_t cat_field = spec.numeric_fields;  // first categorical
  std::map<std::int32_t, int> counts;
  for (std::uint64_t r = 0; r < data.num_records(); ++r) {
    ++counts[data.categorical_value(cat_field, r)];
  }
  // Category 0 must be the most frequent by a wide margin (Zipf head).
  int max_nonzero = 0;
  for (const auto& [cat, count] : counts) {
    if (cat > 0) max_nonzero = std::max(max_nonzero, count);
  }
  EXPECT_GT(counts[0], 2 * max_nonzero);
}

TEST(Synth, BinaryLabelsForLogistic) {
  const auto data = synthesize(spec_by_name("Higgs"), 1000, 11);
  for (std::uint64_t r = 0; r < 1000; ++r) {
    EXPECT_TRUE(data.label(r) == 0.0f || data.label(r) == 1.0f);
  }
}

TEST(Synth, GradedLabelsForRanking) {
  const auto data = synthesize(spec_by_name("Mq2008"), 1000, 11);
  std::set<float> seen;
  for (std::uint64_t r = 0; r < 1000; ++r) seen.insert(data.label(r));
  for (const float y : seen) {
    EXPECT_TRUE(y == 0.0f || y == 1.0f || y == 2.0f);
  }
  EXPECT_GE(seen.size(), 2u);
}

TEST(Runner, ScalesTraceToNominal) {
  RunnerConfig cfg;
  cfg.sim_records = 5000;
  cfg.sim_trees = 4;
  cfg.nominal_trees = 500;
  const auto w = run_workload(spec_by_name("Higgs"), cfg);
  EXPECT_DOUBLE_EQ(w.trace.scale(), 10'000'000.0 / 5000.0);
  EXPECT_DOUBLE_EQ(w.trace.repeat(), 500.0 / 4.0);
  EXPECT_EQ(w.info.nominal_records, 10'000'000u);
  EXPECT_EQ(w.info.trees, 500u);
  EXPECT_EQ(w.info.name, "Higgs");
}

TEST(Runner, SeparableLabelsGiveShallowerTrees) {
  // IoT's near-separable labels must realize shallower trees than Higgs's
  // diffuse labels -- the property behind the paper's IoT observations.
  RunnerConfig cfg;
  cfg.sim_records = 8000;
  cfg.sim_trees = 8;
  const auto iot = run_workload(spec_by_name("IoT"), cfg);
  const auto higgs = run_workload(spec_by_name("Higgs"), cfg);
  EXPECT_LT(iot.train.avg_leaf_depth, higgs.train.avg_leaf_depth);
}

TEST(Runner, CategoricalLabelsGiveLopsidedSplits) {
  // Allstate-style one-hot splits must produce extremely asymmetric
  // children: the explicitly-binned (smaller) child covers only a small
  // fraction of the parent's records.
  RunnerConfig cfg;
  cfg.sim_records = 8000;
  cfg.sim_trees = 6;
  const auto w = run_workload(spec_by_name("Allstate"), cfg);
  double child_records = 0.0;
  double root_records = 0.0;
  for (const auto& e : w.trace.events()) {
    if (e.kind != trace::StepKind::kHistogram) continue;
    if (e.depth == 0) {
      root_records += static_cast<double>(e.records);
    } else {
      child_records += static_cast<double>(e.records);
    }
  }
  ASSERT_GT(root_records, 0.0);
  // Per tree, explicit child binning is a small multiple of the root scan
  // (the paper observes drastically reduced step-1 work).
  EXPECT_LT(child_records / root_records, 1.0);
}

TEST(Runner, ModelsLearnSignal) {
  RunnerConfig cfg;
  cfg.sim_records = 6000;
  cfg.sim_trees = 10;
  for (const char* name : {"IoT", "Higgs"}) {
    const auto w = run_workload(spec_by_name(name), cfg);
    EXPECT_LT(w.train.tree_stats.back().train_loss,
              w.train.tree_stats.front().train_loss)
        << name;
  }
}

}  // namespace
}  // namespace booster::workloads
