// Transport-contract tests for the src/ipc layer: every Transport must
// deliver frames point-to-point, intact, FIFO per directed pair, with a
// bounded-timeout recv -- the exact (and only) guarantees the reliable
// channel builds on. The same assertions run against all three
// implementations (loopback queues, spool files, AF_UNIX sockets), plus
// unit tests of ReliableChannel's retry machinery over a deterministic
// FaultyTransport.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "ipc/codec.h"
#include "ipc/faulty.h"
#include "ipc/file_transport.h"
#include "ipc/loopback.h"
#include "ipc/reliable.h"
#include "ipc/socket_transport.h"
#include "ipc/world.h"

namespace booster::ipc {
namespace {

std::vector<std::uint8_t> frame_of(std::initializer_list<std::uint8_t> b) {
  return std::vector<std::uint8_t>(b);
}

/// The shared contract: FIFO per pair, payload integrity, timeout on an
/// empty channel, per-endpoint stats.
void exercise_pair(Transport& a, Transport& b) {
  const auto f1 = frame_of({1, 2, 3});
  const auto f2 = frame_of({4});
  std::vector<std::uint8_t> big(100000);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 31);
  }

  EXPECT_TRUE(a.send(b.rank(), f1));
  EXPECT_TRUE(a.send(b.rank(), f2));
  EXPECT_TRUE(a.send(b.rank(), big));

  std::vector<std::uint8_t> got;
  ASSERT_EQ(b.recv(a.rank(), &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, f1);
  ASSERT_EQ(b.recv(a.rank(), &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, f2);
  // A frame bigger than any internal buffer arrives intact (the socket
  // transport must reassemble it across reads).
  ASSERT_EQ(b.recv(a.rank(), &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, big);

  // The reverse direction is independent.
  EXPECT_TRUE(b.send(a.rank(), f2));
  ASSERT_EQ(a.recv(b.rank(), &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, f2);

  // Empty channel: bounded timeout, no frame.
  EXPECT_EQ(b.recv(a.rank(), &got, std::chrono::milliseconds(5)),
            RecvStatus::kTimeout);

  EXPECT_EQ(a.stats().frames_sent, 3u);
  EXPECT_EQ(a.stats().frames_received, 1u);
  EXPECT_EQ(b.stats().frames_received, 3u);
  EXPECT_EQ(b.stats().bytes_received, f1.size() + f2.size() + big.size());
}

TEST(IpcTransport, LoopbackDeliversFifoIntactWithTimeout) {
  LoopbackHub hub(3);
  auto t0 = hub.endpoint(0);
  auto t1 = hub.endpoint(1);
  exercise_pair(*t0, *t1);
  // Self-send and out-of-world sends are rejected.
  EXPECT_FALSE(t0->send(0, frame_of({1})));
  EXPECT_FALSE(t0->send(7, frame_of({1})));
}

TEST(IpcTransport, FileSpoolDeliversFifoIntactWithTimeout) {
  const std::string dir = unique_ipc_path("spool-test");
  FileTransport t0(dir, 2, 0);
  FileTransport t1(dir, 2, 1);
  exercise_pair(t0, t1);
}

TEST(IpcTransport, FileSpoolReaderMayStartBeforeWriter) {
  const std::string dir = unique_ipc_path("spool-late");
  FileTransport reader(dir, 2, 1);
  std::vector<std::uint8_t> got;
  // Nothing spooled yet -- not even the file exists.
  EXPECT_EQ(reader.recv(0, &got, std::chrono::milliseconds(5)),
            RecvStatus::kTimeout);
  std::thread writer_thread([&] {
    FileTransport writer(dir, 2, 0);
    writer.send(1, frame_of({9, 8, 7}));
  });
  EXPECT_EQ(reader.recv(0, &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, frame_of({9, 8, 7}));
  writer_thread.join();
}

TEST(IpcTransport, SocketStarDeliversFifoIntactWithTimeout) {
  const std::string path = unique_ipc_path("sock-test");
  std::unique_ptr<SocketTransport> server;
  std::unique_ptr<SocketTransport> client;
  std::thread server_thread([&] { server = SocketTransport::serve(path, 3); });
  std::thread client_thread(
      [&] { client = SocketTransport::connect(path, 3, 1); });
  std::unique_ptr<SocketTransport> client2;
  std::thread client2_thread(
      [&] { client2 = SocketTransport::connect(path, 3, 2); });
  server_thread.join();
  client_thread.join();
  client2_thread.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  ASSERT_NE(client2, nullptr);
  exercise_pair(*server, *client);
  // Star topology: worker-to-worker channels are unsupported by design.
  EXPECT_FALSE(client->send(2, frame_of({1})));
  std::vector<std::uint8_t> got;
  EXPECT_EQ(client->recv(2, &got, std::chrono::milliseconds(5)),
            RecvStatus::kClosed);
  // Rank 0 can talk to the second worker independently.
  EXPECT_TRUE(server->send(2, frame_of({5, 5})));
  ASSERT_EQ(client2->recv(0, &got, std::chrono::milliseconds(2000)),
            RecvStatus::kOk);
  EXPECT_EQ(got, frame_of({5, 5}));
}

TEST(IpcTransport, SocketPeerDisappearingReportsClosed) {
  const std::string path = unique_ipc_path("sock-close");
  std::unique_ptr<SocketTransport> server;
  std::unique_ptr<SocketTransport> client;
  std::thread server_thread([&] { server = SocketTransport::serve(path, 2); });
  client = SocketTransport::connect(path, 2, 1);
  server_thread.join();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(client, nullptr);
  server.reset();  // coordinator goes away
  std::vector<std::uint8_t> got;
  EXPECT_EQ(client->recv(0, &got, std::chrono::milliseconds(2000)),
            RecvStatus::kClosed);
}

TEST(IpcTransport, FaultyTransportInjectsDeterministically) {
  // Two hubs, same seeds, same send sequence => identical fault schedule.
  for (int round = 0; round < 2; ++round) {
    LoopbackHub hub(2);
    auto inner = hub.endpoint(0);
    FaultyTransport faulty(inner.get(), {.drop = 0.3, .bitflip = 0.3}, 99);
    for (std::uint8_t i = 0; i < 100; ++i) {
      faulty.send(1, frame_of({i}));
    }
    static FaultStats first_round;
    if (round == 0) {
      first_round = faulty.fault_stats();
      EXPECT_GT(first_round.dropped, 0u);
      EXPECT_GT(first_round.bitflipped, 0u);
    } else {
      EXPECT_EQ(faulty.fault_stats().dropped, first_round.dropped);
      EXPECT_EQ(faulty.fault_stats().bitflipped, first_round.bitflipped);
    }
  }
}

TEST(IpcTransport, ReliableChannelDeliversInOrderThroughFaults) {
  LoopbackHub hub(2);
  auto raw0 = hub.endpoint(0);
  auto raw1 = hub.endpoint(1);
  FaultyTransport faulty0(raw0.get(),
                          {.drop = 0.15,
                           .truncate = 0.1,
                           .duplicate = 0.1,
                           .reorder = 0.1,
                           .bitflip = 0.1},
                          7);
  ReliableConfig cfg;
  cfg.recv_timeout = std::chrono::milliseconds(10);
  cfg.max_attempts = 200;

  constexpr std::uint32_t kMessages = 60;
  std::thread sender([&] {
    ReliableChannel tx(&faulty0, cfg);
    for (std::uint32_t i = 0; i < kMessages; ++i) {
      std::vector<std::uint8_t> payload = {static_cast<std::uint8_t>(i),
                                           static_cast<std::uint8_t>(i * 3)};
      tx.send(1, MessageType::kShardSummary, payload);
    }
    // Service re-requests until the receiver confirms everything arrived.
    Frame fin;
    ASSERT_TRUE(tx.recv(1, &fin));
    ASSERT_EQ(fin.type, MessageType::kGoodbye);
  });

  ReliableChannel rx(raw1.get(), cfg);
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    Frame frame;
    ASSERT_TRUE(rx.recv(0, &frame)) << "message " << i;
    EXPECT_EQ(frame.type, MessageType::kShardSummary);
    ASSERT_EQ(frame.payload.size(), 2u);
    EXPECT_EQ(frame.payload[0], static_cast<std::uint8_t>(i));
    EXPECT_EQ(frame.payload[1], static_cast<std::uint8_t>(i * 3));
  }
  rx.send(0, MessageType::kGoodbye, {});
  sender.join();
  // The channel actually worked for its retries: some fault fired and was
  // healed (otherwise the rates above silently regressed to zero).
  EXPECT_GT(faulty0.fault_stats().total(), 0u);
  EXPECT_GT(rx.stats().corrupt_frames + rx.stats().duplicates_dropped +
                rx.stats().parked_frames + rx.stats().nacks_sent,
            0u);
}

TEST(IpcTransport, ReliableChannelPacesASlowSenderWithoutDesync) {
  // The receiver times out and nacks *before* the sender has produced the
  // message; the sender must treat the premature re-request as pacing,
  // not as a protocol error, and the message must still arrive.
  LoopbackHub hub(2);
  auto t0 = hub.endpoint(0);
  auto t1 = hub.endpoint(1);
  ReliableConfig cfg;
  cfg.recv_timeout = std::chrono::milliseconds(5);
  cfg.max_attempts = 400;
  std::thread slow_sender([&] {
    ReliableChannel tx(&*t0, cfg);
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    tx.send(1, MessageType::kTreeVerdict, frame_of({1}));
    // Absorb the pacing nacks that queued up while we were "computing".
    Frame fin;
    ASSERT_TRUE(tx.recv(1, &fin));
    ASSERT_EQ(fin.type, MessageType::kGoodbye);
  });
  ReliableChannel rx(&*t1, cfg);
  Frame frame;
  ASSERT_TRUE(rx.recv(0, &frame));
  EXPECT_EQ(frame.type, MessageType::kTreeVerdict);
  EXPECT_GT(rx.stats().nacks_sent, 0u);
  rx.send(0, MessageType::kGoodbye, {});
  slow_sender.join();
}

TEST(IpcTransport, TransportKindNamesRoundTrip) {
  for (const auto kind :
       {TransportKind::kLoopback, TransportKind::kFile, TransportKind::kSocket,
        TransportKind::kTcp}) {
    const auto parsed = transport_kind_from_name(transport_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(transport_kind_from_name("carrier-pigeon").has_value());
}

}  // namespace
}  // namespace booster::ipc
