#include "gbdt/binning.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace booster::gbdt {
namespace {

Dataset make_numeric_dataset(std::uint64_t n) {
  Dataset d;
  d.add_numeric_field("x");
  d.resize(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    d.set_numeric(0, r, static_cast<float>(r));
  }
  return d;
}

TEST(Binner, MissingValuesLandInBinZero) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 4);
  d.resize(3);
  d.set_numeric(0, 0, 1.0f);  // record 1,2 numeric stay NaN
  d.set_categorical(1, 0, 2);  // record 1,2 categorical stay missing
  const auto binned = Binner().bin(d);
  EXPECT_NE(binned.bin(0, 0), 0);
  EXPECT_EQ(binned.bin(0, 1), 0);
  EXPECT_EQ(binned.bin(1, 1), 0);
  EXPECT_EQ(binned.bin(1, 0), 3);  // category 2 -> bin 3 (offset by missing)
}

TEST(Binner, NumericBinsAreOrderPreserving) {
  const auto binned = Binner().bin(make_numeric_dataset(1000));
  for (std::uint64_t r = 1; r < 1000; ++r) {
    EXPECT_LE(binned.bin(0, r - 1), binned.bin(0, r))
        << "larger values must land in equal-or-higher bins";
  }
}

TEST(Binner, RespectsMaxNumericBins) {
  BinningConfig cfg;
  cfg.max_numeric_bins = 16;
  const auto binned = Binner(cfg).bin(make_numeric_dataset(10000));
  EXPECT_LE(binned.field_bins(0).num_bins, 17u);  // 16 value bins + missing
  EXPECT_GE(binned.field_bins(0).num_bins, 2u);
}

TEST(Binner, FewDistinctValuesFewBins) {
  Dataset d;
  d.add_numeric_field("x");
  d.resize(100);
  for (std::uint64_t r = 0; r < 100; ++r) {
    d.set_numeric(0, r, static_cast<float>(r % 3));
  }
  const auto binned = Binner().bin(d);
  EXPECT_EQ(binned.field_bins(0).num_bins, 4u);  // 3 values + missing
}

TEST(Binner, CategoricalBinsAreCategoryPlusOne) {
  Dataset d;
  d.add_categorical_field("c", 6);
  d.resize(6);
  for (std::uint64_t r = 0; r < 6; ++r) {
    d.set_categorical(0, r, static_cast<std::int32_t>(r));
  }
  const auto binned = Binner().bin(d);
  EXPECT_EQ(binned.field_bins(0).num_bins, 7u);
  for (std::uint64_t r = 0; r < 6; ++r) {
    EXPECT_EQ(binned.bin(0, r), r + 1);
  }
}

TEST(Binner, QuantileBinsBalanceCounts) {
  BinningConfig cfg;
  cfg.max_numeric_bins = 4;
  const auto binned = Binner(cfg).bin(make_numeric_dataset(4000));
  std::vector<int> counts(binned.field_bins(0).num_bins, 0);
  for (std::uint64_t r = 0; r < 4000; ++r) ++counts[binned.bin(0, r)];
  // Uniform data over 4 quantile bins: each value bin near 1000.
  for (std::size_t b = 1; b < counts.size(); ++b) {
    EXPECT_NEAR(counts[b], 1000, 150);
  }
}

TEST(Binner, ColumnViewMatchesBinAccessor) {
  const auto binned = Binner().bin(make_numeric_dataset(50));
  const auto& col = binned.column(0);
  ASSERT_EQ(col.size(), 50u);
  for (std::uint64_t r = 0; r < 50; ++r) EXPECT_EQ(col[r], binned.bin(0, r));
}

TEST(Binner, TotalBinsSumsFields) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 9);
  d.resize(10);
  for (std::uint64_t r = 0; r < 10; ++r) {
    d.set_numeric(0, r, static_cast<float>(r));
    d.set_categorical(1, r, static_cast<std::int32_t>(r % 9));
  }
  const auto binned = Binner().bin(d);
  EXPECT_EQ(binned.total_bins(),
            binned.field_bins(0).num_bins + binned.field_bins(1).num_bins);
  EXPECT_EQ(binned.max_bins_per_field(),
            std::max(binned.field_bins(0).num_bins,
                     binned.field_bins(1).num_bins));
}

TEST(Binner, LayoutRecordBytesCoverFields) {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("small", 10);
  d.add_categorical_field("wide", 600);  // spans 3 SRAM slots of 256
  d.resize(4);
  const auto binned = Binner().bin(d);
  // 1 (numeric, 256 bins max) + 1 (small) + 3 (wide 601 bins) = 5 bytes.
  EXPECT_EQ(binned.layout().record_bytes, 5u);
  EXPECT_EQ(binned.layout().field_slot_bytes[2], 3u);
}

TEST(Binner, DeterministicAcrossCalls) {
  const auto a = Binner().bin(make_numeric_dataset(500));
  const auto b = Binner().bin(make_numeric_dataset(500));
  for (std::uint64_t r = 0; r < 500; ++r) EXPECT_EQ(a.bin(0, r), b.bin(0, r));
}

// Regression: the move constructor and move assignment used to leave the
// moved-from dataset with row_major_built_ == true and a stale
// num_records_, so refilling it (the chunk-arena recycling pattern in
// stream::ChunkWindow) would hand out a row-major view of the *previous*
// occupant's bins. Moved-from must be empty-but-valid.
TEST(BinnedDataset, MovedFromIsEmptyAndRefillsCorrectly) {
  auto a = Binner().bin(make_numeric_dataset(100));
  a.ensure_row_major();  // set the built flag so the move must clear it
  ASSERT_NE(a.row_major_bins(), nullptr);

  BinnedDataset b(std::move(a));
  EXPECT_EQ(a.num_records(), 0u) << "move ctor must empty the source";
  EXPECT_EQ(b.num_records(), 100u);

  BinnedDataset c;
  c = std::move(b);
  EXPECT_EQ(b.num_records(), 0u) << "move assign must empty the source";
  EXPECT_EQ(c.num_records(), 100u);

  // Refill the moved-from object (arena recycling) with *different* data:
  // the row-major view must be rebuilt from the new contents, not served
  // stale from before the move.
  Dataset d;
  d.add_numeric_field("x");
  d.resize(40);
  for (std::uint64_t r = 0; r < 40; ++r) {
    d.set_numeric(0, r, static_cast<float>(40 - r));
  }
  a = Binner().bin(d);
  b = Binner().bin(d);
  for (const BinnedDataset* refilled : {&a, &b}) {
    ASSERT_EQ(refilled->num_records(), 40u);
    refilled->ensure_row_major();
    const BinIndex* rm = refilled->row_major_bins();
    for (std::uint64_t r = 0; r < 40; ++r) {
      EXPECT_EQ(rm[r], refilled->bin(0, r)) << "row " << r;
    }
  }
}

// Property: every record falls in exactly one bin per field, never out of
// range -- the invariant behind the paper's "exactly one access per SRAM".
class BinRangeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BinRangeSweep, AllBinsWithinFieldRange) {
  BinningConfig cfg;
  cfg.max_numeric_bins = GetParam();
  const auto binned = Binner(cfg).bin(make_numeric_dataset(2000));
  const auto& fb = binned.field_bins(0);
  for (std::uint64_t r = 0; r < 2000; ++r) {
    EXPECT_LT(binned.bin(0, r), fb.num_bins);
  }
}

INSTANTIATE_TEST_SUITE_P(MaxBins, BinRangeSweep,
                         ::testing::Values(2u, 8u, 64u, 255u));

}  // namespace
}  // namespace booster::gbdt
