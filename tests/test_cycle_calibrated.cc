// CycleCalibratedBoosterModel vs the analytic BoosterModel (ISSUE 2
// acceptance): per-step training times from closed-loop cycle co-simulation
// must agree with the analytic max(memory, compute) costing within 15% on
// the sampled fraud and Flight workloads, while sharing the host step-2
// cost and the analytic inference/activity rules. Disagreement beyond that
// band would mean the analytic bandwidth/service rules have drifted from
// the FR-FCFS + BU-pipeline reality (bench_closed_loop reports the same
// ratios as JSON for trend tracking).
#include "perf/cycle_calibrated.h"

#include <gtest/gtest.h>

#include "core/booster_model.h"
#include "workloads/runner.h"

namespace booster::perf {
namespace {

using trace::StepKind;

const workloads::WorkloadResult& workload(int which) {
  static const auto runs = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 8000;
    cfg.sim_trees = 8;
    std::vector<workloads::WorkloadResult> w;
    w.push_back(workloads::run_workload(workloads::fraud_spec(), cfg));
    w.push_back(
        workloads::run_workload(workloads::spec_by_name("Flight"), cfg));
    return w;
  }();
  return runs[which];
}

constexpr StepKind kAccelSteps[] = {StepKind::kHistogram, StepKind::kPartition,
                                    StepKind::kTraversal};

TEST(CycleCalibrated, AgreesWithAnalyticWithin15PercentPerStep) {
  const core::BoosterModel analytic;
  const CycleCalibratedBoosterModel cycle;
  for (int i = 0; i < 2; ++i) {
    const auto& w = workload(i);
    const auto a = analytic.train_cost(w.trace, w.info);
    const auto c = cycle.train_cost(w.trace, w.info);
    for (const StepKind k : kAccelSteps) {
      ASSERT_GT(a[k], 0.0) << w.info.name;
      const double ratio = c[k] / a[k];
      EXPECT_GT(ratio, 0.85) << w.info.name << " " << trace::step_name(k);
      EXPECT_LT(ratio, 1.15) << w.info.name << " " << trace::step_name(k);
    }
    // Step 2 is the same host cost in both models, to the bit.
    EXPECT_DOUBLE_EQ(c[StepKind::kSplitSelect], a[StepKind::kSplitSelect]);
  }
}

TEST(CycleCalibrated, ImplementsPerfModelInterface) {
  const CycleCalibratedBoosterModel model;
  EXPECT_EQ(model.name(), "Booster-cycle");
  EXPECT_EQ(CycleCalibratedBoosterModel({}, {}, {}, "-x").name(),
            "Booster-cycle-x");

  // Inference and energy activity delegate to the analytic rules (they are
  // not closed-loop quantities).
  const core::BoosterModel analytic;
  InferenceSpec spec;
  spec.records = 1e6;
  spec.trees = 500;
  spec.max_depth = 6;
  spec.avg_path_length = 6.0;
  spec.record_bytes = 28;
  EXPECT_DOUBLE_EQ(model.inference_cost(spec), analytic.inference_cost(spec));
  const auto& w = workload(0);
  const auto act_c = model.train_activity(w.trace, w.info);
  const auto act_a = analytic.train_activity(w.trace, w.info);
  EXPECT_DOUBLE_EQ(act_c.dram_bytes, act_a.dram_bytes);
  EXPECT_DOUBLE_EQ(act_c.sram_accesses, act_a.sram_accesses);
}

TEST(CycleCalibrated, RepeatScalesAcceleratedSteps) {
  const CycleCalibratedBoosterModel model;
  const auto& w = workload(0);
  auto trace2 = w.trace;
  trace2.set_repeat(w.trace.repeat() * 2.0);
  const auto base = model.train_cost(w.trace, w.info);
  const auto doubled = model.train_cost(trace2, w.info);
  for (const StepKind k : kAccelSteps) {
    EXPECT_NEAR(doubled[k], 2.0 * base[k], 1e-9 * base[k]);
  }
}

TEST(CycleCalibrated, DeterministicAcrossCalls) {
  const CycleCalibratedBoosterModel model;
  const auto& w = workload(1);
  const auto a = model.train_cost(w.trace, w.info);
  const auto b = model.train_cost(w.trace, w.info);
  for (std::size_t i = 0; i < a.seconds.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.seconds[i], b.seconds[i]);
  }
}

TEST(CycleCalibrated, ReplayThreadsDoNotChangeResults) {
  // The per-class co-sims fan out over a thread pool, but the per-class
  // seconds are reduced serially in class order -- the breakdown must be
  // bit-identical at every replay thread count.
  const auto& w = workload(0);
  const CycleCalibratedBoosterModel serial;
  const auto base = serial.train_cost(w.trace, w.info);
  for (const unsigned threads : {2u, 3u, 8u}) {
    const CycleCalibratedBoosterModel threaded(
        core::BoosterConfig{}, memsim::DramConfig{}, HostParams{}, "",
        threads);
    EXPECT_EQ(threaded.replay_threads(), threads);
    const auto got = threaded.train_cost(w.trace, w.info);
    for (std::size_t i = 0; i < base.seconds.size(); ++i) {
      EXPECT_EQ(got.seconds[i], base.seconds[i]) << "threads=" << threads;
    }
  }
}

}  // namespace
}  // namespace booster::perf
