#include "core/bin_mapping.h"

#include <gtest/gtest.h>

namespace booster::core {
namespace {

TEST(GroupByField, OneFieldPerSram) {
  const std::vector<std::uint32_t> bins{256, 100, 256};
  const auto m = BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_EQ(m.srams_used(), 3u);
  EXPECT_EQ(m.serialization_factor(), 1u);
  EXPECT_EQ(m.field_first_sram[0], 0u);
  EXPECT_EQ(m.field_first_sram[1], 1u);
  EXPECT_EQ(m.field_first_sram[2], 2u);
}

TEST(GroupByField, WideFieldSpansSramGroup) {
  const std::vector<std::uint32_t> bins{600};
  const auto m = BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_EQ(m.field_span[0], 3u);
  EXPECT_EQ(m.srams_used(), 3u);
  EXPECT_EQ(m.serialization_factor(), 1u);  // still one field per SRAM
}

TEST(GroupByField, FullSramsAreFullyUtilized) {
  const std::vector<std::uint32_t> bins{256, 256};
  const auto m = BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_DOUBLE_EQ(m.capacity_utilization(bins), 1.0);
}

TEST(GroupByField, SmallFieldsWasteCapacity) {
  const std::vector<std::uint32_t> bins{10, 10};
  const auto m = BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_EQ(m.srams_used(), 2u);
  EXPECT_NEAR(m.capacity_utilization(bins), 20.0 / 512.0, 1e-12);
}

TEST(NaivePack, PacksAcrossFieldBoundaries) {
  const std::vector<std::uint32_t> bins{100, 100, 100};
  const auto m = BinMapping::build(MappingStrategy::kNaivePack, bins, 256);
  EXPECT_EQ(m.srams_used(), 2u);  // 300 bins -> 2 SRAMs
  // SRAM 0 holds field 0 entirely and parts of fields 1-2.
  EXPECT_GE(m.serialization_factor(), 2u);
}

TEST(NaivePack, ExactFitBehavesLikeGroupByField) {
  // Numeric-only datasets where every field exactly fills an SRAM: the
  // paper notes naive packing then matches group-by-field.
  const std::vector<std::uint32_t> bins{256, 256, 256};
  const auto m = BinMapping::build(MappingStrategy::kNaivePack, bins, 256);
  EXPECT_EQ(m.srams_used(), 3u);
  EXPECT_EQ(m.serialization_factor(), 1u);
}

TEST(NaivePack, ManySmallFieldsSerializeHeavily) {
  // 8 fields of 32 bins pack into one SRAM: every record makes 8 serialized
  // updates to it (the paper's Figure 4 pathology).
  const std::vector<std::uint32_t> bins(8, 32);
  const auto m = BinMapping::build(MappingStrategy::kNaivePack, bins, 256);
  EXPECT_EQ(m.srams_used(), 1u);
  EXPECT_EQ(m.serialization_factor(), 8u);
  EXPECT_DOUBLE_EQ(m.capacity_utilization(bins), 1.0);
}

TEST(NaivePack, UtilizationNeverBelowGroupByField) {
  const std::vector<std::uint32_t> bins{100, 30, 256, 17, 300};
  const auto naive = BinMapping::build(MappingStrategy::kNaivePack, bins, 256);
  const auto grouped =
      BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_GE(naive.capacity_utilization(bins),
            grouped.capacity_utilization(bins));
  EXPECT_LE(naive.srams_used(), grouped.srams_used());
}

TEST(NaivePack, SpanCoversStraddlingField) {
  const std::vector<std::uint32_t> bins{200, 200};
  const auto m = BinMapping::build(MappingStrategy::kNaivePack, bins, 256);
  // Field 1 straddles SRAM 0 and 1.
  EXPECT_EQ(m.field_first_sram[1], 0u);
  EXPECT_EQ(m.field_span[1], 2u);
}

TEST(MappingName, Strings) {
  EXPECT_STREQ(mapping_name(MappingStrategy::kNaivePack), "naive-pack");
  EXPECT_STREQ(mapping_name(MappingStrategy::kGroupByField), "group-by-field");
}

// Property sweep: for any field shape, group-by-field has serialization 1
// and both mappings place every field somewhere valid.
class MappingSweep
    : public ::testing::TestWithParam<std::vector<std::uint32_t>> {};

TEST_P(MappingSweep, StructuralInvariants) {
  const auto& bins = GetParam();
  for (const auto strategy :
       {MappingStrategy::kNaivePack, MappingStrategy::kGroupByField}) {
    const auto m = BinMapping::build(strategy, bins, 256);
    ASSERT_EQ(m.field_first_sram.size(), bins.size());
    for (std::size_t f = 0; f < bins.size(); ++f) {
      EXPECT_GE(m.field_span[f], 1u);
      EXPECT_LT(m.field_first_sram[f] + m.field_span[f] - 1, m.srams_used());
    }
    EXPECT_GE(m.serialization_factor(), 1u);
    EXPECT_LE(m.capacity_utilization(bins), 1.0 + 1e-12);
  }
  const auto grouped = BinMapping::build(MappingStrategy::kGroupByField, bins, 256);
  EXPECT_EQ(grouped.serialization_factor(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MappingSweep,
    ::testing::Values(std::vector<std::uint32_t>{1},
                      std::vector<std::uint32_t>{256},
                      std::vector<std::uint32_t>{257},
                      std::vector<std::uint32_t>{3, 5, 7, 11},
                      std::vector<std::uint32_t>{256, 1, 600, 32},
                      std::vector<std::uint32_t>(100, 64)));

}  // namespace
}  // namespace booster::core
