// Property-based sweeps over randomized dataset shapes: the full pipeline
// (synthesize -> bin -> train -> trace -> cost models) must maintain its
// structural invariants for arbitrary schemas, not just the five paper
// benchmarks. Each case derives a pseudo-random schema from its seed.
#include <gtest/gtest.h>

#include "baselines/cpu_like.h"
#include "core/booster_model.h"
#include "core/engines.h"
#include "gbdt/trainer.h"
#include "util/rng.h"
#include "workloads/synth.h"

namespace booster {
namespace {

workloads::DatasetSpec random_spec(std::uint64_t seed) {
  util::Rng rng(seed * 0x9E3779B9ULL + 1);
  workloads::DatasetSpec spec;
  spec.name = "fuzz-" + std::to_string(seed);
  spec.nominal_records = 400 + rng.next_below(1200);
  spec.numeric_fields = 1 + static_cast<std::uint32_t>(rng.next_below(12));
  const auto cats = rng.next_below(4);
  for (std::uint64_t c = 0; c < cats; ++c) {
    spec.categorical_cardinalities.push_back(
        2 + static_cast<std::uint32_t>(rng.next_below(400)));
  }
  spec.missing_rate = rng.next_double() * 0.3;
  spec.categorical_skew = 0.8 + rng.next_double();
  const char* losses[] = {"squared", "logistic", "ranking"};
  spec.loss = losses[rng.next_below(3)];
  spec.label_structure = static_cast<workloads::LabelStructure>(
      rng.next_below(3));
  spec.label_noise = 0.05 + rng.next_double() * 0.8;
  return spec;
}

class PipelineFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineFuzz, TrainingInvariantsHold) {
  const auto spec = random_spec(GetParam());
  const auto raw = workloads::synthesize(spec, spec.nominal_records, GetParam());
  const auto data = gbdt::Binner().bin(raw);

  gbdt::TrainerConfig cfg;
  cfg.num_trees = 3;
  cfg.max_depth = 4;
  cfg.loss = spec.loss;
  trace::StepTrace trace;
  trace::WorkloadInfo info;
  const auto result = gbdt::Trainer(cfg).train(data, &trace, &info);

  // Tree invariants.
  ASSERT_EQ(result.model.num_trees(), 3u);
  for (const auto& tree : result.model.trees()) {
    EXPECT_LE(tree.max_depth(), 4u);
    EXPECT_LE(tree.num_leaves(), 16u);
    EXPECT_EQ(tree.num_leaves() * 2 - 1, tree.num_nodes());  // full binary
  }

  // Loss is non-increasing across trees.
  for (std::size_t i = 1; i < result.tree_stats.size(); ++i) {
    EXPECT_LE(result.tree_stats[i].train_loss,
              result.tree_stats[i - 1].train_loss + 1e-9);
  }

  // Trace invariants: root hist covers all records; partitions conserve
  // records relative to their node (child hists are at most half).
  for (const auto& e : trace.events()) {
    if (e.kind == trace::StepKind::kHistogram) {
      EXPECT_LE(e.records, data.num_records());
      if (e.depth == 0) {
        EXPECT_EQ(e.records, data.num_records());
      }
    }
  }

  // Every model prices the trace positively and finitely.
  const core::BoosterModel booster;
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  for (const auto* model :
       {static_cast<const perf::PerfModel*>(&booster),
        static_cast<const perf::PerfModel*>(&cpu)}) {
    const auto cost = model->train_cost(trace, info);
    EXPECT_GT(cost.total(), 0.0) << model->name();
    EXPECT_TRUE(std::isfinite(cost.total())) << model->name();
  }
}

TEST_P(PipelineFuzz, EngineEquivalenceHolds) {
  const auto spec = random_spec(GetParam() + 1000);
  const auto raw = workloads::synthesize(spec, 600, GetParam());
  const auto data = gbdt::Binner().bin(raw);

  std::vector<gbdt::GradientPair> grads(data.num_records());
  util::Rng rng(GetParam());
  for (auto& gp : grads) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.05, 1.0));
  }
  std::vector<std::uint32_t> rows(data.num_records());
  for (std::uint32_t r = 0; r < rows.size(); ++r) rows[r] = r;

  for (const auto strategy : {core::MappingStrategy::kGroupByField,
                              core::MappingStrategy::kNaivePack}) {
    core::HistogramEngine engine(core::BoosterConfig{},
                                 core::BinnedFieldShape::of(data), strategy);
    engine.run(data, rows, grads);
    const auto hw = engine.harvest(data);
    gbdt::Histogram sw(data);
    sw.build(data, rows, grads);
    const auto a = hw.totals();
    const auto b = sw.totals();
    EXPECT_DOUBLE_EQ(a.count, b.count);
    EXPECT_NEAR(a.g, b.g, 1e-3);
    EXPECT_NEAR(a.h, b.h, 1e-3);
  }
}

TEST_P(PipelineFuzz, ModelSpeedupOrderingStable) {
  // Booster must never lose to the ideal CPU on any schema: its compute is
  // rate-matched to a memory system the CPU model does not even pay for.
  const auto spec = random_spec(GetParam() + 2000);
  const auto raw = workloads::synthesize(spec, 800, GetParam());
  const auto data = gbdt::Binner().bin(raw);
  gbdt::TrainerConfig cfg;
  cfg.num_trees = 2;
  cfg.max_depth = 3;
  cfg.loss = spec.loss;
  trace::StepTrace trace;
  trace::WorkloadInfo info;
  (void)gbdt::Trainer(cfg).train(data, &trace, &info);
  // Scale to a realistic nominal size; tiny workloads are host-bound for
  // every system equally.
  trace.set_scale(1e6 / static_cast<double>(data.num_records()));
  info.nominal_records = 1'000'000;

  const core::BoosterModel booster;
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  const double cpu_t = cpu.train_cost(trace, info).total();
  const double bst_t = booster.train_cost(trace, info).total();
  EXPECT_LT(bst_t, cpu_t);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineFuzz,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace booster
