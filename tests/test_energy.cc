#include <gtest/gtest.h>

#include "baselines/cpu_like.h"
#include "core/booster_model.h"
#include "energy/area_power.h"
#include "energy/energy_model.h"
#include "workloads/runner.h"

namespace booster::energy {
namespace {

TEST(EnergyModel, LinearInActivity) {
  EnergyModel em;
  perf::Activity a;
  a.sram_accesses = 1000;
  a.sram_energy_per_access_norm = 1.0;
  a.dram_bytes = 4096;
  const auto r1 = em.energy(a);
  a.sram_accesses *= 3;
  a.dram_bytes *= 3;
  const auto r3 = em.energy(a);
  EXPECT_NEAR(r3.sram_joules, 3.0 * r1.sram_joules, 1e-18);
  EXPECT_NEAR(r3.dram_joules, 3.0 * r1.dram_joules, 1e-18);
  EXPECT_DOUBLE_EQ(r1.total(), r1.sram_joules + r1.dram_joules);
}

TEST(EnergyModel, NormScalesSramEnergy) {
  EnergyModel em;
  perf::Activity cpu;
  cpu.sram_accesses = 1000;
  cpu.sram_energy_per_access_norm = 1.0;
  perf::Activity gpu = cpu;
  gpu.sram_energy_per_access_norm = 2.64;
  EXPECT_NEAR(em.energy(gpu).sram_joules / em.energy(cpu).sram_joules, 2.64,
              1e-9);
}

TEST(EnergyIntegration, BoosterStrictlyLowerThanCpuAndGpu) {
  // The paper's Fig 10 headline: Booster is lower in *both* SRAM and DRAM
  // energy, so total energy is lower regardless of the SRAM:DRAM ratio.
  workloads::RunnerConfig cfg;
  cfg.sim_records = 6000;
  cfg.sim_trees = 6;
  const auto w =
      workloads::run_workload(workloads::spec_by_name("Higgs"), cfg);
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster;
  EnergyModel em;
  const auto e_cpu = em.energy(cpu.train_activity(w.trace, w.info));
  const auto e_gpu = em.energy(gpu.train_activity(w.trace, w.info));
  const auto e_bst = em.energy(booster.train_activity(w.trace, w.info));
  EXPECT_LT(e_bst.sram_joules, e_cpu.sram_joules);
  EXPECT_LT(e_bst.sram_joules, e_gpu.sram_joules);
  EXPECT_LT(e_bst.dram_joules, e_cpu.dram_joules);
  EXPECT_LE(e_bst.dram_joules, e_gpu.dram_joules);
  EXPECT_GT(e_gpu.sram_joules, e_cpu.sram_joules);
}

TEST(AreaPower, ReproducesTableSix) {
  const AreaPowerModel model;
  const auto chip = model.estimate(3200);
  EXPECT_NEAR(chip.control.area_mm2, 8.4, 0.05);
  EXPECT_NEAR(chip.control.power_w, 4.3, 0.05);
  EXPECT_NEAR(chip.fpu.area_mm2, 18.4, 0.05);
  EXPECT_NEAR(chip.fpu.power_w, 9.5, 0.05);
  EXPECT_NEAR(chip.sram.area_mm2, 33.1, 0.05);
  EXPECT_NEAR(chip.sram.power_w, 9.4, 0.05);
  EXPECT_NEAR(chip.total().area_mm2, 60.0, 0.2);
  EXPECT_NEAR(chip.total().power_w, 23.2, 0.1);
}

TEST(AreaPower, SramShareNearFiftyFivePercent) {
  const AreaPowerModel model;
  const auto chip = model.estimate(3200);
  EXPECT_NEAR(chip.sram.area_mm2 / chip.total().area_mm2, 0.55, 0.02);
}

TEST(AreaPower, BankingOverheadFactors) {
  const AreaPowerModel model;
  const auto chip = model.estimate(3200);
  EXPECT_NEAR(chip.sram.area_mm2 / model.monolithic_sram_area_mm2(3200), 1.7,
              1e-9);
  EXPECT_NEAR(chip.sram.power_w / model.monolithic_sram_power_w(3200), 1.59,
              1e-9);
}

TEST(AreaPower, ScalesLinearlyWithBus) {
  const AreaPowerModel model;
  const auto half = model.estimate(1600).total();
  const auto full = model.estimate(3200).total();
  EXPECT_NEAR(full.area_mm2, 2.0 * half.area_mm2, 1e-9);
  EXPECT_NEAR(full.power_w, 2.0 * half.power_w, 1e-9);
}

}  // namespace
}  // namespace booster::energy
