#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace booster::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicGivenSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(11);
  for (const std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1000000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(13);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);  // all 8 values hit in 1000 draws
}

TEST(Rng, UniformMeanNearCenter) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform(-1.0, 1.0);
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
}

TEST(Rng, NormalMoments) {
  Rng rng(19);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(ZipfSampler, FrequenciesDecreaseWithRank) {
  Rng rng(29);
  ZipfSampler zipf(50, 1.2);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 200000; ++i) ++counts[zipf.draw(rng)];
  // Category 0 must dominate and the tail must thin out.
  EXPECT_GT(counts[0], counts[5]);
  EXPECT_GT(counts[5], counts[49]);
  EXPECT_GT(counts[0], 200000 / 10);
}

TEST(ZipfSampler, SingleCategory) {
  Rng rng(31);
  ZipfSampler zipf(1, 1.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.draw(rng), 0u);
}

TEST(ZipfSampler, HigherSkewConcentratesMass) {
  Rng rng_a(37);
  Rng rng_b(37);
  ZipfSampler mild(100, 0.8);
  ZipfSampler steep(100, 2.0);
  int mild_top = 0;
  int steep_top = 0;
  for (int i = 0; i < 50000; ++i) {
    mild_top += mild.draw(rng_a) == 0 ? 1 : 0;
    steep_top += steep.draw(rng_b) == 0 ? 1 : 0;
  }
  EXPECT_GT(steep_top, mild_top);
}

}  // namespace
}  // namespace booster::util
