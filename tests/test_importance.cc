#include "gbdt/importance.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

TEST(Importance, EmptyModelHasNoEntries) {
  Model m(0.0, make_loss("squared"));
  EXPECT_TRUE(feature_importance(m).empty());
}

TEST(Importance, CountsAndGainsAggregate) {
  Model m(0.0, make_loss("squared"));
  Tree t;
  SplitInfo root;
  root.field = 2;
  root.gain = 5.0;
  const auto [l, r] = t.split_leaf(t.root(), root);
  SplitInfo child;
  child.field = 2;
  child.gain = 1.5;
  t.split_leaf(l, child);
  SplitInfo other;
  other.field = 0;
  other.gain = 3.0;
  t.split_leaf(r, other);
  m.add_tree(std::move(t));

  const auto importance = feature_importance(m);
  ASSERT_EQ(importance.size(), 2u);
  EXPECT_EQ(importance[0].field, 2u);  // 6.5 gain beats 3.0
  EXPECT_EQ(importance[0].split_count, 2u);
  EXPECT_DOUBLE_EQ(importance[0].total_gain, 6.5);
  EXPECT_EQ(importance[1].field, 0u);
}

TEST(Importance, SeparableSignalFieldsRankFirst) {
  // The IoT-style generator decides labels with the first numeric fields;
  // a trained model's top-gain fields must be among them.
  workloads::DatasetSpec spec;
  spec.name = "imp";
  spec.nominal_records = 5000;
  spec.numeric_fields = 10;
  spec.loss = "logistic";
  spec.label_structure = workloads::LabelStructure::kSeparable;
  spec.label_noise = 0.01;
  const auto data = Binner().bin(workloads::synthesize(spec, 5000, 77));
  TrainerConfig cfg;
  cfg.num_trees = 10;
  cfg.max_depth = 4;
  cfg.loss = "logistic";
  const auto result = Trainer(cfg).train(data);
  const auto importance = feature_importance(result.model);
  ASSERT_FALSE(importance.empty());
  EXPECT_LT(importance[0].field, 3u)
      << "the label rule uses the first three fields";
  EXPECT_GT(importance[0].total_gain, 0.0);
}

TEST(Importance, SurvivesModelRoundTrip) {
  workloads::DatasetSpec spec;
  spec.name = "imp-io";
  spec.nominal_records = 2000;
  spec.numeric_fields = 5;
  spec.loss = "squared";
  const auto data = Binner().bin(workloads::synthesize(spec, 2000, 9));
  TrainerConfig cfg;
  cfg.num_trees = 4;
  cfg.max_depth = 3;
  cfg.loss = "squared";
  const auto result = Trainer(cfg).train(data);

  std::stringstream buffer;
  save_model(result.model, buffer);
  const Model loaded = load_model(buffer);

  const auto a = feature_importance(result.model);
  const auto b = feature_importance(loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].field, b[i].field);
    EXPECT_EQ(a[i].split_count, b[i].split_count);
    EXPECT_DOUBLE_EQ(a[i].total_gain, b[i].total_gain);
  }
}

}  // namespace
}  // namespace booster::gbdt
