// Elastic-membership equivalence layer (ISSUE 6 acceptance): training
// over real localhost TCP with scripted worker churn -- kills after the
// root histograms shipped (mid-tree adoption), hangs at tree start (the
// half-open case only the liveness deadline catches), late joins, and a
// real SIGKILLed forked process -- must produce output *bit-identical*
// to the single-process gbdt::Trainer, EXPECT_EQ with no tolerances.
// The argument is the same as the static distributed layer's: the
// quantized-exact shard merge is independent of how shards are grouped
// into ranks, so any boundary-to-boundary regrouping is a pure
// recomputation. What this file adds is that the *protocol* -- catch-up
// admission, adoption replay, assignment broadcast, session replacement
// -- preserves that property through arbitrary membership churn, and
// that failure detection stays within its configured deadline.
#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/distributed.h"
#include "gbdt/trainer.h"
#include "ipc/membership.h"
#include "ipc/tcp_transport.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

using namespace std::chrono_literals;

BinnedDataset random_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "elastic";
  spec.nominal_records = n;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {7, 3};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig base_config(std::uint32_t trees = 4, std::uint32_t shards = 3) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 4;
  cfg.loss = "logistic";
  cfg.num_threads = 1;
  cfg.num_shards = shards;
  return cfg;
}

/// Elastic world with churn-test timing: a tight liveness deadline (plus
/// heartbeats, so live-but-computing workers stay fresh), a short
/// reconnect window, and fast backoff. Production defaults are 10s
/// deadlines; tests would crawl under them.
ElasticWorldConfig make_world(TrainerConfig tcfg, std::uint32_t initial,
                              const std::string& churn) {
  ElasticWorldConfig cfg;
  cfg.dist.trainer = tcfg;
  cfg.dist.channel.recv_timeout = 25ms;
  cfg.dist.channel.liveness_timeout = 400ms;
  cfg.dist.channel.heartbeat_interval = 50ms;
  cfg.initial_workers = initial;
  const auto parsed = ipc::ChurnSchedule::parse(churn);
  EXPECT_TRUE(parsed.has_value()) << churn;
  if (parsed) cfg.churn = *parsed;
  cfg.tcp.connect_timeout = 5000ms;
  cfg.tcp.reconnect_window = 1000ms;
  cfg.tcp.backoff.base = 5ms;
  cfg.tcp.backoff.cap = 50ms;
  return cfg;
}

void expect_models_bit_identical(const Model& got, const Model& ref,
                                 const std::string& context) {
  ASSERT_EQ(got.num_trees(), ref.num_trees()) << context;
  for (std::uint32_t t = 0; t < ref.num_trees(); ++t) {
    const Tree& a = got.trees()[t];
    const Tree& b = ref.trees()[t];
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context << " tree " << t;
    for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
      const TreeNode& x = a.node(static_cast<std::int32_t>(id));
      const TreeNode& y = b.node(static_cast<std::int32_t>(id));
      ASSERT_EQ(x.is_leaf, y.is_leaf) << context;
      ASSERT_EQ(x.field, y.field) << context;
      ASSERT_EQ(x.kind, y.kind) << context;
      ASSERT_EQ(x.threshold_bin, y.threshold_bin) << context;
      ASSERT_EQ(x.default_left, y.default_left) << context;
      ASSERT_EQ(x.left, y.left) << context;
      ASSERT_EQ(x.right, y.right) << context;
      ASSERT_EQ(x.weight, y.weight)
          << context << " tree " << t << " node " << id;
      ASSERT_EQ(x.gain, y.gain) << context << " tree " << t << " node " << id;
    }
  }
}

void expect_result_bit_identical(const TrainResult& got,
                                 const TrainResult& ref,
                                 const BinnedDataset& data,
                                 const std::string& context) {
  expect_models_bit_identical(got.model, ref.model, context);
  ASSERT_EQ(got.tree_stats.size(), ref.tree_stats.size()) << context;
  for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
    EXPECT_EQ(got.tree_stats[t].train_loss, ref.tree_stats[t].train_loss)
        << context << " tree " << t;
  }
  EXPECT_EQ(got.avg_leaf_depth, ref.avg_leaf_depth) << context;
  EXPECT_EQ(got.early_stopped, ref.early_stopped) << context;
  for (std::uint64_t r = 0; r < data.num_records(); r += 97) {
    EXPECT_EQ(got.model.predict_raw(data, r), ref.model.predict_raw(data, r))
        << context << " record " << r;
  }
}

TEST(ElasticTcp, NoChurnMatchesSingleProcessAcrossGrid) {
  const auto data = random_binned(1501, 31);
  for (const std::uint32_t procs : {2u, 4u}) {
    for (const std::uint32_t shards : {2u, 3u, 8u}) {
      const auto tcfg = base_config(3, shards);
      const auto ref = Trainer(tcfg).train(data);
      const auto out = train_elastic_tcp(make_world(tcfg, procs - 1, ""),
                                         data);
      const std::string context = std::to_string(procs) + " procs / " +
                                  std::to_string(shards) + " shards";
      ASSERT_TRUE(out.rank0.has_value()) << context;
      expect_result_bit_identical(*out.rank0, ref, data, context + " rank0");
      ASSERT_EQ(out.completed.size(), procs - 1) << context;
      for (std::size_t w = 0; w < out.completed.size(); ++w) {
        expect_result_bit_identical(out.completed[w], ref, data,
                                    context + " worker " + std::to_string(w));
      }
      EXPECT_EQ(out.crashed + out.hung + out.orphaned, 0u) << context;
      EXPECT_EQ(out.rank0_stats.repartitions, 0u) << context;
    }
  }
}

TEST(ElasticTcp, KillMidTreeIsAdoptedBitIdentically) {
  const auto data = random_binned(1201, 37);
  const auto tcfg = base_config(4, 3);
  const auto ref = Trainer(tcfg).train(data);

  // Rank 2 dies after shipping its root histograms of tree 1: rank 0
  // adopts its shards mid-tree (decision-log replay) and repartitions at
  // the next boundary.
  const auto out =
      train_elastic_tcp(make_world(tcfg, 2, "kill:2@1"), data);
  ASSERT_TRUE(out.rank0.has_value());
  expect_result_bit_identical(*out.rank0, ref, data, "kill rank0");
  EXPECT_EQ(out.crashed, 1u);
  EXPECT_EQ(out.rank0_stats.dead_workers, 1u);
  EXPECT_GE(out.rank0_stats.shards_adopted, 1u);
  EXPECT_GE(out.rank0_stats.repartitions, 1u);
  ASSERT_EQ(out.completed.size(), 1u) << "rank 1 must ride out the churn";
  expect_result_bit_identical(out.completed[0], ref, data, "kill survivor");
}

TEST(ElasticTcp, HangIsDetectedWithinTheConfiguredDeadline) {
  const auto data = random_binned(1201, 41);
  const auto tcfg = base_config(4, 3);
  const auto ref = Trainer(tcfg).train(data);

  // Rank 1 goes silent at the start of tree 2 with its connection open:
  // TCP never reports a thing, so the detection *must* come from the
  // liveness deadline -- and within its documented bound.
  const auto cfg = make_world(tcfg, 2, "hang:1@2");
  const auto out = train_elastic_tcp(cfg, data);
  ASSERT_TRUE(out.rank0.has_value());
  expect_result_bit_identical(*out.rank0, ref, data, "hang rank0");
  EXPECT_EQ(out.hung, 1u);
  EXPECT_EQ(out.rank0_stats.dead_workers, 1u);
  ASSERT_EQ(out.completed.size(), 1u);
  expect_result_bit_identical(out.completed[0], ref, data, "hang survivor");

  // Time-to-detect, measured by the channel on the monotonic clock, is
  // bounded by liveness_timeout + recv_timeout + scheduling slack.
  const auto& ch = out.rank0_stats.channel;
  EXPECT_GE(ch.peers_declared_dead, 1u);
  const std::uint64_t liveness_ms = 400;
  EXPECT_GE(ch.max_detect_ms, liveness_ms);
  EXPECT_LE(ch.max_detect_ms, liveness_ms + 25 + 600);
}

TEST(ElasticTcp, LateJoinerCatchesUpAndFinishesIdentically) {
  const auto data = random_binned(1201, 43);
  const auto tcfg = base_config(5, 3);
  const auto ref = Trainer(tcfg).train(data);

  // Rank 2 does not exist until tree 2's boundary; it is admitted with a
  // catch-up of the finished prefix and participates from there on.
  const auto out =
      train_elastic_tcp(make_world(tcfg, 1, "join:2@2"), data);
  ASSERT_TRUE(out.rank0.has_value());
  expect_result_bit_identical(*out.rank0, ref, data, "join rank0");
  EXPECT_EQ(out.rank0_stats.joins, 1u);
  EXPECT_GE(out.rank0_stats.repartitions, 1u);
  EXPECT_EQ(out.crashed + out.hung + out.orphaned, 0u);
  ASSERT_EQ(out.completed.size(), 2u)
      << "the original worker and the joiner must both finish";
  expect_result_bit_identical(out.completed[0], ref, data, "join worker A");
  expect_result_bit_identical(out.completed[1], ref, data, "join worker B");
}

TEST(ElasticTcp, KillThenRejoinIsANewSessionBitIdentical) {
  const auto data = random_binned(1201, 47);
  const auto tcfg = base_config(5, 3);
  const auto ref = Trainer(tcfg).train(data);

  // Rank 1 dies mid-tree 1 and a fresh incarnation of the *same rank*
  // joins at boundary 3: a new session nonce, so the coordinator wipes
  // the rank's protocol state and re-admits it through catch-up.
  const auto out =
      train_elastic_tcp(make_world(tcfg, 2, "kill:1@1,join:1@3"), data);
  ASSERT_TRUE(out.rank0.has_value());
  expect_result_bit_identical(*out.rank0, ref, data, "rejoin rank0");
  EXPECT_EQ(out.crashed, 1u);
  EXPECT_EQ(out.rank0_stats.dead_workers, 1u);
  EXPECT_GE(out.rank0_stats.joins, 1u);
  ASSERT_EQ(out.completed.size(), 2u)
      << "rank 2 and rank 1's second incarnation must both finish";
  expect_result_bit_identical(out.completed[0], ref, data, "rejoin worker A");
  expect_result_bit_identical(out.completed[1], ref, data, "rejoin worker B");
}

TEST(ElasticTcp, AllWorkersDieAndRankZeroFinishesAlone) {
  const auto data = random_binned(1201, 53);
  const auto tcfg = base_config(4, 3);
  const auto ref = Trainer(tcfg).train(data);

  const auto out =
      train_elastic_tcp(make_world(tcfg, 2, "kill:1@0,kill:2@1"), data);
  ASSERT_TRUE(out.rank0.has_value());
  expect_result_bit_identical(*out.rank0, ref, data, "solo rank0");
  EXPECT_EQ(out.crashed, 2u);
  EXPECT_EQ(out.rank0_stats.dead_workers, 2u);
  EXPECT_TRUE(out.completed.empty());
}

TEST(ElasticTcp, ChurnStormGridStaysBitIdentical) {
  const auto data = random_binned(1201, 59);
  // The acceptance grid: world sizes x shard counts x a seeded schedule
  // mixing a mid-tree kill with a late join.
  for (const std::uint32_t procs : {2u, 4u}) {
    for (const std::uint32_t shards : {2u, 3u, 8u}) {
      const auto tcfg = base_config(4, shards);
      const auto ref = Trainer(tcfg).train(data);
      const auto out = train_elastic_tcp(
          make_world(tcfg, procs - 1, "kill:1@1,join:5@2"), data);
      const std::string context = std::to_string(procs) + " procs / " +
                                  std::to_string(shards) + " shards";
      ASSERT_TRUE(out.rank0.has_value()) << context;
      expect_result_bit_identical(*out.rank0, ref, data, context + " rank0");
      EXPECT_EQ(out.crashed, 1u) << context;
      EXPECT_EQ(out.rank0_stats.joins, 1u) << context;
      // Everyone who was not scripted to die finishes with the model:
      // procs-2 surviving initial workers plus the joiner.
      ASSERT_EQ(out.completed.size(), procs - 1) << context;
      for (std::size_t w = 0; w < out.completed.size(); ++w) {
        expect_result_bit_identical(
            out.completed[w], ref, data,
            context + " finisher " + std::to_string(w));
      }
    }
  }
}

TEST(ElasticTcp, SigkilledRealProcessIsSurvivedBitIdentically) {
  const auto data = random_binned(1201, 61);
  const auto tcfg = base_config(4, 3);
  const auto ref = Trainer(tcfg).train(data);
  data.ensure_row_major();  // both sides of the fork share the same view

  ipc::TcpOptions topts;
  topts.connect_timeout = 10000ms;
  topts.reconnect_window = 1000ms;
  auto listener = ipc::TcpTransport::listen("127.0.0.1", 0, 2, topts);
  ASSERT_NE(listener, nullptr);
  const std::uint16_t port = listener->port();

  // A real OS process as the worker: fork (no threads are running yet in
  // this test), train elastically, and SIGKILL itself after shipping tree
  // 1's root histograms -- no destructors, no goodbye, no TCP FIN beyond
  // what the kernel sends for a killed process.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    auto transport = ipc::TcpTransport::connect("127.0.0.1", port, 2, 1,
                                                topts);
    if (transport == nullptr) ::_exit(3);
    DistributedConfig dist;
    dist.trainer = tcfg;
    dist.channel.recv_timeout = 25ms;
    dist.channel.liveness_timeout = 400ms;
    dist.channel.heartbeat_interval = 50ms;
    dist.elastic = true;
    dist.churn_hook = [](std::uint32_t tree, ElasticChurnPoint point) {
      if (tree == 1 && point == ElasticChurnPoint::kAfterFirstBuild) {
        ::raise(SIGKILL);
      }
      return ElasticChurnAction::kContinue;
    };
    DistributedTrainer trainer(dist, transport.get());
    trainer.train(data);
    ::_exit(2);  // must be unreachable: SIGKILL fires at tree 1
  }

  ASSERT_TRUE(listener->wait_for_world(2, 15000ms));
  DistributedConfig d0;
  d0.trainer = tcfg;
  d0.channel.recv_timeout = 25ms;
  d0.channel.liveness_timeout = 400ms;
  d0.channel.heartbeat_interval = 50ms;
  d0.elastic = true;
  DistributedTrainer rank0(d0, listener.get());
  const auto got = rank0.train(data);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status)) << "the worker must have died by signal";
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  expect_result_bit_identical(got, ref, data, "sigkill rank0");
  EXPECT_EQ(rank0.stats().dead_workers, 1u);
  EXPECT_GE(rank0.stats().shards_adopted, 1u);
}

}  // namespace
}  // namespace booster::gbdt
