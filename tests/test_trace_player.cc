#include "memsim/trace_player.h"

#include <gtest/gtest.h>

namespace booster::memsim {
namespace {

TEST(TracePlayer, SequentialBuilderProducesOrderedReads) {
  const auto trace = TracePlayer::sequential_read(10, 5);
  ASSERT_EQ(trace.size(), 10u);
  EXPECT_EQ(trace.front().block_addr, 5u);
  EXPECT_EQ(trace.back().block_addr, 14u);
  for (const auto& e : trace) EXPECT_FALSE(e.is_write);
}

TEST(TracePlayer, BernoulliGatherDensity) {
  const auto trace = TracePlayer::bernoulli_gather(100000, 0.1);
  EXPECT_NEAR(static_cast<double>(trace.size()), 10000.0, 500.0);
  // Addresses strictly increasing (ordered gather).
  for (std::size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GT(trace[i].block_addr, trace[i - 1].block_addr);
  }
}

TEST(TracePlayer, ReadWriteMixFractions) {
  const auto trace = TracePlayer::read_write_mix(10000, 0.25);
  std::size_t writes = 0;
  for (const auto& e : trace) writes += e.is_write ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(writes), 2500.0, 200.0);
}

TEST(TracePlayer, ReplayCompletesAllRequests) {
  TracePlayer player;
  const auto result = player.replay(TracePlayer::sequential_read(5000));
  EXPECT_EQ(result.bytes, 5000u * 64u);
  EXPECT_GT(result.cycles, 0u);
  EXPECT_GT(result.bandwidth_bytes_per_sec, 0.0);
}

TEST(TracePlayer, DenseGatherFasterThanSparsePerByteDelivered) {
  // Sparse gathers lose row locality: lower bandwidth at equal bytes.
  TracePlayer player;
  const auto dense = player.replay(TracePlayer::sequential_read(20000));
  const auto sparse =
      player.replay(TracePlayer::bernoulli_gather(320000, 1.0 / 16.0));
  EXPECT_GT(dense.bandwidth_bytes_per_sec, sparse.bandwidth_bytes_per_sec);
  EXPECT_GT(dense.row_hit_rate, sparse.row_hit_rate);
}

TEST(TracePlayer, WriteHeavyMixStillCompletes) {
  TracePlayer player;
  const auto result = player.replay(TracePlayer::read_write_mix(8000, 0.5));
  EXPECT_EQ(result.bytes, 8000u * 64u);
}

TEST(TracePlayer, EmptyTraceIsFree) {
  TracePlayer player;
  const auto result = player.replay({});
  EXPECT_EQ(result.bytes, 0u);
  EXPECT_EQ(result.cycles, 0u);
}

}  // namespace
}  // namespace booster::memsim
