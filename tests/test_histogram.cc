#include "gbdt/histogram.h"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset small_binned(std::uint64_t n = 500, std::uint64_t seed = 1) {
  workloads::DatasetSpec spec;
  spec.name = "unit";
  spec.nominal_records = n;
  spec.numeric_fields = 4;
  spec.categorical_cardinalities = {5};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  const auto raw = workloads::synthesize(spec, n, seed);
  return Binner().bin(raw);
}

std::vector<GradientPair> random_gradients(std::uint64_t n,
                                           std::uint64_t seed = 2) {
  util::Rng rng(seed);
  std::vector<GradientPair> g(n);
  for (auto& gp : g) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  return g;
}

std::vector<std::uint32_t> all_rows(std::uint64_t n) {
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(Histogram, ShapeMatchesDataset) {
  const auto data = small_binned();
  Histogram hist(data);
  EXPECT_EQ(hist.num_fields(), data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    EXPECT_EQ(hist.field(f).size(), data.field_bins(f).num_bins);
  }
}

TEST(Histogram, BuildCountsEveryRecordOncePerField) {
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    double count = 0.0;
    for (const auto& b : hist.field(f)) count += b.count;
    EXPECT_DOUBLE_EQ(count, static_cast<double>(data.num_records()))
        << "field " << f << ": every record must hit exactly one bin";
  }
}

TEST(Histogram, TotalsInvariantAcrossFields) {
  // The paper's group-by-field mapping relies on: each field's bin sums
  // equal the node totals (one update per field per record).
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  const BinStats ref = hist.totals();
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    BinStats t;
    for (const auto& b : hist.field(f)) t += b;
    EXPECT_NEAR(t.g, ref.g, 1e-6);
    EXPECT_NEAR(t.h, ref.h, 1e-6);
    EXPECT_DOUBLE_EQ(t.count, ref.count);
  }
}

TEST(Histogram, GradientSumsMatchInput) {
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  double g_expected = 0.0;
  for (const auto& gp : grads) g_expected += gp.g;
  EXPECT_NEAR(hist.totals().g, g_expected, 1e-5);
}

TEST(Histogram, SubtractionRecoversSibling) {
  // Smaller-child trick (paper SS II-A): parent - left == right, bin-wise.
  const auto data = small_binned(600);
  const auto grads = random_gradients(data.num_records());
  const auto rows = all_rows(data.num_records());
  const std::vector<std::uint32_t> left(rows.begin(), rows.begin() + 200);
  const std::vector<std::uint32_t> right(rows.begin() + 200, rows.end());

  Histogram parent(data), left_h(data), right_direct(data);
  parent.build(data, rows, grads);
  left_h.build(data, left, grads);
  right_direct.build(data, right, grads);

  Histogram right_sub;
  right_sub.subtract_from(parent, left_h);
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto a = right_sub.field(f);
    const auto b = right_direct.field(f);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
      EXPECT_NEAR(a[i].g, b[i].g, 1e-5);
      EXPECT_NEAR(a[i].h, b[i].h, 1e-5);
    }
  }
}

TEST(Histogram, BuildIsAdditiveOverRowPartitions) {
  const auto data = small_binned(400);
  const auto grads = random_gradients(data.num_records());
  const auto rows = all_rows(data.num_records());
  Histogram whole(data);
  whole.build(data, rows, grads);

  Histogram partial(data);
  const std::vector<std::uint32_t> first(rows.begin(), rows.begin() + 150);
  const std::vector<std::uint32_t> second(rows.begin() + 150, rows.end());
  partial.build(data, first, grads);
  partial.build(data, second, grads);  // build accumulates

  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto a = whole.field(f);
    const auto b = partial.field(f);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
      EXPECT_NEAR(a[i].g, b[i].g, 1e-5);
    }
  }
}

TEST(Histogram, ClearZeroesEverything) {
  const auto data = small_binned(100);
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  hist.clear();
  EXPECT_DOUBLE_EQ(hist.totals().count, 0.0);
  EXPECT_DOUBLE_EQ(hist.totals().g, 0.0);
}

TEST(Histogram, EmptyRowsYieldZeroTotals) {
  const auto data = small_binned(100);
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, {}, grads);
  EXPECT_DOUBLE_EQ(hist.totals().count, 0.0);
}

TEST(BinStats, ArithmeticOps) {
  BinStats a{2.0, 1.0, 3.0};
  BinStats b{1.0, 0.5, 1.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.count, 3.0);
  EXPECT_DOUBLE_EQ(a.g, 1.5);
  a -= b;
  EXPECT_DOUBLE_EQ(a.count, 2.0);
  EXPECT_DOUBLE_EQ(a.h, 3.0);
}

TEST(Histogram, TotalBinsMatchesDataset) {
  const auto data = small_binned(100);
  Histogram hist(data);
  EXPECT_EQ(hist.total_bins(), data.total_bins());
}

}  // namespace
}  // namespace booster::gbdt
