#include "gbdt/histogram.h"

#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <vector>

#include "util/rng.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset small_binned(std::uint64_t n = 500, std::uint64_t seed = 1) {
  workloads::DatasetSpec spec;
  spec.name = "unit";
  spec.nominal_records = n;
  spec.numeric_fields = 4;
  spec.categorical_cardinalities = {5};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  const auto raw = workloads::synthesize(spec, n, seed);
  return Binner().bin(raw);
}

std::vector<GradientPair> random_gradients(std::uint64_t n,
                                           std::uint64_t seed = 2) {
  util::Rng rng(seed);
  std::vector<GradientPair> g(n);
  for (auto& gp : g) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  return g;
}

std::vector<std::uint32_t> all_rows(std::uint64_t n) {
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(Histogram, ShapeMatchesDataset) {
  const auto data = small_binned();
  Histogram hist(data);
  EXPECT_EQ(hist.num_fields(), data.num_fields());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    EXPECT_EQ(hist.field(f).size(), data.field_bins(f).num_bins);
  }
}

TEST(Histogram, BuildCountsEveryRecordOncePerField) {
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    double count = 0.0;
    for (const auto& b : hist.field(f)) count += b.count;
    EXPECT_DOUBLE_EQ(count, static_cast<double>(data.num_records()))
        << "field " << f << ": every record must hit exactly one bin";
  }
}

TEST(Histogram, TotalsInvariantAcrossFields) {
  // The paper's group-by-field mapping relies on: each field's bin sums
  // equal the node totals (one update per field per record).
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  const BinStats ref = hist.totals();
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    BinStats t;
    for (const auto& b : hist.field(f)) t += b;
    EXPECT_NEAR(t.g, ref.g, 1e-6);
    EXPECT_NEAR(t.h, ref.h, 1e-6);
    EXPECT_DOUBLE_EQ(t.count, ref.count);
  }
}

TEST(Histogram, GradientSumsMatchInput) {
  const auto data = small_binned();
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  double g_expected = 0.0;
  for (const auto& gp : grads) g_expected += gp.g;
  EXPECT_NEAR(hist.totals().g, g_expected, 1e-5);
}

TEST(Histogram, SubtractionRecoversSibling) {
  // Smaller-child trick (paper SS II-A): parent - left == right, bin-wise.
  const auto data = small_binned(600);
  const auto grads = random_gradients(data.num_records());
  const auto rows = all_rows(data.num_records());
  const std::vector<std::uint32_t> left(rows.begin(), rows.begin() + 200);
  const std::vector<std::uint32_t> right(rows.begin() + 200, rows.end());

  Histogram parent(data), left_h(data), right_direct(data);
  parent.build(data, rows, grads);
  left_h.build(data, left, grads);
  right_direct.build(data, right, grads);

  Histogram right_sub;
  right_sub.subtract_from(parent, left_h);
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto a = right_sub.field(f);
    const auto b = right_direct.field(f);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
      EXPECT_NEAR(a[i].g, b[i].g, 1e-5);
      EXPECT_NEAR(a[i].h, b[i].h, 1e-5);
    }
  }
}

TEST(Histogram, BuildIsAdditiveOverRowPartitions) {
  const auto data = small_binned(400);
  const auto grads = random_gradients(data.num_records());
  const auto rows = all_rows(data.num_records());
  Histogram whole(data);
  whole.build(data, rows, grads);

  Histogram partial(data);
  const std::vector<std::uint32_t> first(rows.begin(), rows.begin() + 150);
  const std::vector<std::uint32_t> second(rows.begin() + 150, rows.end());
  partial.build(data, first, grads);
  partial.build(data, second, grads);  // build accumulates

  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    const auto a = whole.field(f);
    const auto b = partial.field(f);
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count);
      EXPECT_NEAR(a[i].g, b[i].g, 1e-5);
    }
  }
}

TEST(Histogram, ClearZeroesEverything) {
  const auto data = small_binned(100);
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, all_rows(data.num_records()), grads);
  hist.clear();
  EXPECT_DOUBLE_EQ(hist.totals().count, 0.0);
  EXPECT_DOUBLE_EQ(hist.totals().g, 0.0);
}

TEST(Histogram, EmptyRowsYieldZeroTotals) {
  const auto data = small_binned(100);
  const auto grads = random_gradients(data.num_records());
  Histogram hist(data);
  hist.build(data, {}, grads);
  EXPECT_DOUBLE_EQ(hist.totals().count, 0.0);
}

TEST(BinStats, ArithmeticOps) {
  BinStats a{2.0, 1.0, 3.0};
  BinStats b{1.0, 0.5, 1.0};
  a += b;
  EXPECT_DOUBLE_EQ(a.count, 3.0);
  EXPECT_DOUBLE_EQ(a.g, 1.5);
  a -= b;
  EXPECT_DOUBLE_EQ(a.count, 2.0);
  EXPECT_DOUBLE_EQ(a.h, 3.0);
}

TEST(Histogram, TotalBinsMatchesDataset) {
  const auto data = small_binned(100);
  Histogram hist(data);
  EXPECT_EQ(hist.total_bins(), data.total_bins());
}

// --- Quantized-exact accumulation: the shard-merge contract. ------------

void expect_bins_bit_identical(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (std::uint32_t f = 0; f < a.num_fields(); ++f) {
    const auto x = a.field(f);
    const auto y = b.field(f);
    ASSERT_EQ(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
      // EXPECT_EQ, not NEAR: quantized accumulation is exact, so any
      // grouping of the same records produces the same bits.
      EXPECT_EQ(x[i].count, y[i].count) << "field " << f << " bin " << i;
      EXPECT_EQ(x[i].g, y[i].g) << "field " << f << " bin " << i;
      EXPECT_EQ(x[i].h, y[i].h) << "field " << f << " bin " << i;
    }
  }
}

TEST(HistogramMerge, QuantizeStatIsIdempotentOnTheGrid) {
  for (const double x : {0.0, 1.0, -0.37, 123.456, -1e-9, 0.99999988079071}) {
    const double q = quantize_stat(x);
    EXPECT_EQ(quantize_stat(q), q) << x;
    // On-grid: an exact multiple of the quantum.
    EXPECT_EQ(q, std::nearbyint(q * kStatInvQuantum) * kStatQuantum);
    // Close to the input: within half a quantum.
    EXPECT_NEAR(q, x, kStatQuantum / 2) << x;
  }
}

TEST(HistogramMerge, ExactUnderAnyContiguousShardSplit) {
  // The ShardedTrainer contract: per-shard histograms over contiguous row
  // ranges, merged with Histogram::add in shard order, are bit-identical
  // to one build over all rows -- for every shard count, including uneven
  // splits (n = 997 is prime).
  const std::uint64_t n = 997;
  const auto data = small_binned(n, 5);
  const auto grads = random_gradients(n, 6);
  const auto rows = all_rows(n);

  Histogram whole(data);
  whole.build(data, rows, grads);
  const std::uint64_t count = whole.totals().count_u64();
  EXPECT_EQ(count, n);  // count conservation, exactly

  for (const std::uint32_t shards : {2u, 3u, 5u, 8u, 16u}) {
    Histogram merged(data);
    std::uint64_t merged_rows = 0;
    for (std::uint32_t s = 0; s < shards; ++s) {
      const std::uint64_t begin = n * s / shards;
      const std::uint64_t end = n * (s + 1) / shards;
      Histogram part(data);
      part.build(data,
                 std::span<const std::uint32_t>(rows.data() + begin,
                                                end - begin),
                 grads);
      merged_rows += part.totals().count_u64();
      merged.add(part);
    }
    EXPECT_EQ(merged_rows, n) << shards << " shards";
    EXPECT_EQ(merged.totals().count_u64(), n) << shards << " shards";
    expect_bins_bit_identical(merged, whole);
  }
}

TEST(HistogramMerge, ExactUnderAnyMergeOrder) {
  // Order-insensitivity of the merge operator itself: forward, reverse,
  // and odd/even interleaved merge orders all produce the same bits.
  const std::uint64_t n = 1200;
  const auto data = small_binned(n, 7);
  const auto grads = random_gradients(n, 8);
  const auto rows = all_rows(n);
  const std::uint32_t shards = 7;

  std::vector<Histogram> parts;
  for (std::uint32_t s = 0; s < shards; ++s) {
    const std::uint64_t begin = n * s / shards;
    const std::uint64_t end = n * (s + 1) / shards;
    Histogram part(data);
    part.build(data,
               std::span<const std::uint32_t>(rows.data() + begin,
                                              end - begin),
               grads);
    parts.push_back(std::move(part));
  }

  std::vector<std::vector<std::uint32_t>> orders = {
      {0, 1, 2, 3, 4, 5, 6}, {6, 5, 4, 3, 2, 1, 0}, {1, 3, 5, 0, 2, 4, 6}};
  Histogram reference(data);
  for (std::size_t o = 0; o < orders.size(); ++o) {
    Histogram merged(data);
    for (const std::uint32_t s : orders[o]) merged.add(parts[s]);
    if (o == 0) {
      reference = merged;
    } else {
      expect_bins_bit_identical(merged, reference);
    }
  }
}

TEST(HistogramMerge, RowMajorReferenceAndChunkedBuildsAllBitIdentical) {
  // With exact accumulation the row-major kernel, the column-gather
  // reference, and an arbitrary two-piece split all agree bit for bit.
  const std::uint64_t n = 800;
  const auto data = small_binned(n, 9);
  const auto grads = random_gradients(n, 10);
  const auto rows = all_rows(n);

  Histogram row_major(data), reference(data), pieces(data);
  row_major.build(data, rows, grads);
  reference.build_reference(data, rows, grads);
  pieces.build(data, std::span<const std::uint32_t>(rows.data(), 311), grads);
  pieces.build(data,
               std::span<const std::uint32_t>(rows.data() + 311, n - 311),
               grads);
  expect_bins_bit_identical(reference, row_major);
  expect_bins_bit_identical(pieces, row_major);
}

TEST(HistogramMerge, SubtractionIsExactOnQuantizedSums) {
  // parent - smaller == larger, bit for bit (the sibling trick never
  // leaves FP residue on the quantum grid).
  const std::uint64_t n = 900;
  const auto data = small_binned(n, 11);
  const auto grads = random_gradients(n, 12);
  const auto rows = all_rows(n);

  Histogram parent(data), left(data), right_direct(data);
  parent.build(data, rows, grads);
  left.build(data, std::span<const std::uint32_t>(rows.data(), 350), grads);
  right_direct.build(
      data, std::span<const std::uint32_t>(rows.data() + 350, n - 350),
      grads);

  Histogram right_sub;
  right_sub.subtract_from(parent, left);
  expect_bins_bit_identical(right_sub, right_direct);
}

}  // namespace
}  // namespace booster::gbdt
