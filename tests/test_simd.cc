// The SIMD dispatch layer (util/simd.h): level naming/parsing, the
// BOOSTER_SIMD resolution rule, and -- the property everything else leans
// on -- bit-equality of every kernel against its scalar reference at every
// dispatch level this host can execute. Levels the host (or toolchain)
// lacks are skipped, never failed, so the suite is green on any machine.
// Also covers the FlatEnsemble bulk-prediction path: predict_many must
// match per-record Model::predict EXPECT_EQ-exactly, including uneven tile
// tails, categorical splits, missing values, and single-leaf trees.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <tuple>
#include <utility>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/flat_ensemble.h"
#include "gbdt/histogram.h"
#include "gbdt/trainer.h"
#include "gbdt/tree.h"
#include "util/rng.h"
#include "util/simd.h"
#include "workloads/synth.h"

namespace booster::util::simd {
namespace {

/// True when this binary carries `level`'s kernel table *and* the host can
/// execute it (kernels(level) falls back to scalar otherwise).
bool level_available(Level level) { return kernels(level).level == level; }

const Level kWideLevels[] = {Level::kAvx2, Level::kAvx512};

TEST(SimdDispatch, LevelNamesRoundTrip) {
  for (const Level level :
       {Level::kScalar, Level::kAvx2, Level::kAvx512}) {
    Level parsed;
    ASSERT_TRUE(parse_level(level_name(level), &parsed));
    EXPECT_EQ(parsed, level);
  }
  Level parsed;
  EXPECT_FALSE(parse_level("sse9", &parsed));
  EXPECT_FALSE(parse_level("", &parsed));
  EXPECT_FALSE(parse_level("AVX2", &parsed));  // names are lowercase
}

TEST(SimdDispatch, ResolveClampsOverrideToDetected) {
  // An override can lower the level...
  EXPECT_EQ(resolve(Level::kAvx512, "scalar"), Level::kScalar);
  EXPECT_EQ(resolve(Level::kAvx512, "avx2"), Level::kAvx2);
  EXPECT_EQ(resolve(Level::kAvx2, "scalar"), Level::kScalar);
  // ...but never raise it above what the host supports.
  EXPECT_EQ(resolve(Level::kScalar, "avx512"), Level::kScalar);
  EXPECT_EQ(resolve(Level::kAvx2, "avx512"), Level::kAvx2);
  // No/garbage override: detected wins.
  EXPECT_EQ(resolve(Level::kAvx512, nullptr), Level::kAvx512);
  EXPECT_EQ(resolve(Level::kAvx2, "bogus"), Level::kAvx2);
  EXPECT_EQ(resolve(Level::kScalar, nullptr), Level::kScalar);
}

TEST(SimdDispatch, DetectedWithinCompiledAndActiveWithinDetected) {
  EXPECT_LE(static_cast<int>(detected()), static_cast<int>(compiled_max()));
  EXPECT_LE(static_cast<int>(active()), static_cast<int>(detected()));
  // Every level at or below detected() must actually hand out its table.
  for (const Level level : kWideLevels) {
    if (static_cast<int>(level) <= static_cast<int>(detected())) {
      EXPECT_TRUE(level_available(level)) << level_name(level);
    }
  }
  EXPECT_TRUE(level_available(Level::kScalar));
}

TEST(SimdDispatch, ScopedLevelRepointsActiveAndRestores) {
  const Level before = active();
  {
    const ScopedLevelForTesting scoped(Level::kScalar);
    EXPECT_EQ(active(), Level::kScalar);
    EXPECT_EQ(kernels().level, Level::kScalar);
  }
  EXPECT_EQ(active(), before);
}

TEST(SimdDispatch, UnsupportedLevelFallsBackToScalarTable) {
  // On hosts lacking a level, kernels(level) must degrade, not crash.
  for (const Level level : kWideLevels) {
    const Kernels& k = kernels(level);
    if (!level_available(level)) {
      EXPECT_EQ(k.level, Level::kScalar) << level_name(level);
    }
    ASSERT_NE(k.add, nullptr);
    ASSERT_NE(k.traverse_block, nullptr);
  }
}

// ------------------------------------------------------- kernel bit-equality

/// Array lengths exercising full vectors, masked/scalar tails, and the
/// empty case for every lane width in the table.
const std::size_t kLengths[] = {0, 1, 3, 4, 7, 8, 9, 15, 16, 17, 31, 100};

std::vector<double> random_doubles(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal() * 3.0;
  return v;
}

TEST(SimdKernels, ArrayOpsBitIdenticalToScalar) {
  const Kernels& scalar = kernels(Level::kScalar);
  for (const Level level : kWideLevels) {
    if (!level_available(level)) continue;  // skip, never fail
    const Kernels& wide = kernels(level);
    for (const std::size_t n : kLengths) {
      const auto a = random_doubles(n, 7 * n + 1);
      const auto b = random_doubles(n, 7 * n + 2);

      auto dst_s = a, dst_w = a;
      scalar.add(dst_s.data(), b.data(), n);
      wide.add(dst_w.data(), b.data(), n);
      EXPECT_EQ(dst_s, dst_w) << level_name(level) << " add n=" << n;

      dst_s = a, dst_w = a;
      scalar.sub(dst_s.data(), b.data(), n);
      wide.sub(dst_w.data(), b.data(), n);
      EXPECT_EQ(dst_s, dst_w) << level_name(level) << " sub n=" << n;

      std::vector<double> out_s(n, -1.0), out_w(n, -2.0);
      scalar.diff(out_s.data(), a.data(), b.data(), n);
      wide.diff(out_w.data(), a.data(), b.data(), n);
      EXPECT_EQ(out_s, out_w) << level_name(level) << " diff n=" << n;

      dst_w = a;
      wide.zero(dst_w.data(), n);
      EXPECT_EQ(dst_w, std::vector<double>(n, 0.0))
          << level_name(level) << " zero n=" << n;
    }
  }
}

TEST(SimdKernels, PrefixSum3BitIdenticalOnQuantizedTriples) {
  // prefix_sum3's wide paths may reassociate additions across triples, so
  // its bit-identity contract holds for the operands it is specified for:
  // integer counts and 2^-24-quantum gradient multiples (exact sums). Feed
  // it exactly those, as the split scan does.
  const Kernels& scalar = kernels(Level::kScalar);
  Rng rng(4242);
  for (const std::size_t n :
       {std::size_t{0}, std::size_t{1}, std::size_t{2}, std::size_t{3},
        std::size_t{7}, std::size_t{64}, std::size_t{255}}) {
    std::vector<double> src(3 * n);
    for (std::size_t i = 0; i < n; ++i) {
      src[3 * i] = static_cast<double>(i % 9);
      src[3 * i + 1] =
          gbdt::quantize_stat(static_cast<float>(rng.uniform(-1.0, 1.0)));
      src[3 * i + 2] =
          gbdt::quantize_stat(static_cast<float>(rng.uniform(0.0, 1.0)));
    }
    // Scalar kernel against a naive running sum.
    std::vector<double> expect(3 * n);
    double c = 0.0, g = 0.0, h = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      c += src[3 * i];
      g += src[3 * i + 1];
      h += src[3 * i + 2];
      expect[3 * i] = c;
      expect[3 * i + 1] = g;
      expect[3 * i + 2] = h;
    }
    std::vector<double> out_s(3 * n, -1.0);
    scalar.prefix_sum3(src.data(), n, out_s.data());
    EXPECT_EQ(out_s, expect) << "scalar n=" << n;

    for (const Level level : kWideLevels) {
      if (!level_available(level)) continue;  // skip, never fail
      std::vector<double> out_w(3 * n, -2.0);
      kernels(level).prefix_sum3(src.data(), n, out_w.data());
      EXPECT_EQ(out_w, out_s) << level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdKernels, QuantizeGatherBitIdenticalToScalar) {
  const Kernels& scalar = kernels(Level::kScalar);
  // Random pairs plus adversarial rounding ties: (2k+1) * quantum/2 is
  // exactly representable and sits exactly between two grid points, where
  // round-to-nearest-even decides -- the vector round must agree with
  // std::nearbyint on every one.
  constexpr std::size_t kPairs = 300;
  std::vector<gbdt::GradientPair> pairs(kPairs);
  Rng rng(99);
  for (std::size_t i = 0; i < kPairs; ++i) {
    if (i % 3 == 0) {
      const float half = static_cast<float>(gbdt::kStatQuantum) * 0.5f;
      pairs[i].g = static_cast<float>(2 * i + 1) * half;
      pairs[i].h = -static_cast<float>(2 * i + 9) * half;
    } else {
      pairs[i].g = static_cast<float>(rng.normal());
      pairs[i].h = static_cast<float>(rng.uniform(0.0, 2.0));
    }
  }
  // Rows in scrambled order with repeats (as mid-tree nodes produce).
  std::vector<std::uint32_t> rows;
  for (std::uint32_t r = 0; r < kPairs; ++r) {
    rows.push_back((r * 7 + 3) % kPairs);
    if (r % 5 == 0) rows.push_back(r);
  }
  const float* flat = reinterpret_cast<const float*>(pairs.data());

  for (const Level level : kWideLevels) {
    if (!level_available(level)) continue;
    const Kernels& wide = kernels(level);
    for (const std::size_t n : kLengths) {
      ASSERT_LE(n, rows.size());
      std::vector<double> qg_s(n, -1), qh_s(n, -1), qg_w(n, -2), qh_w(n, -2);
      scalar.quantize_gather(flat, rows.data(), n, gbdt::kStatInvQuantum,
                             gbdt::kStatQuantum, qg_s.data(), qh_s.data());
      wide.quantize_gather(flat, rows.data(), n, gbdt::kStatInvQuantum,
                           gbdt::kStatQuantum, qg_w.data(), qh_w.data());
      EXPECT_EQ(qg_s, qg_w) << level_name(level) << " qg n=" << n;
      EXPECT_EQ(qh_s, qh_w) << level_name(level) << " qh n=" << n;
    }
  }
}

}  // namespace
}  // namespace booster::util::simd

namespace booster::gbdt {
namespace {

namespace simd = util::simd;

BinnedDataset synth_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "simd";
  spec.nominal_records = n;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {6, 3};  // categorical splits in play
  spec.missing_rate = 0.2;                  // bin-0 default routing in play
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

Model train_model(const BinnedDataset& data, std::uint32_t trees,
                  std::uint32_t max_depth) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = max_depth;
  cfg.loss = "logistic";
  cfg.num_threads = 1;
  return Trainer(cfg).train(data).model;
}

// Histogram ops ride the dispatched kernels (histogram.cc): whole-object
// equality against a scalar-pinned run, at awkward shapes.
TEST(SimdKernels, HistogramOpsBitIdenticalAcrossLevels) {
  const auto data = synth_binned(1003, 5);
  std::vector<GradientPair> grads(data.num_records());
  util::Rng rng(17);
  for (auto& gp : grads) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  std::vector<std::uint32_t> all(data.num_records());
  for (std::uint32_t r = 0; r < all.size(); ++r) all[r] = r;
  const std::span<const std::uint32_t> subset =
      std::span<const std::uint32_t>(all).subspan(101, 517);

  const auto run = [&](simd::Level level) {
    const simd::ScopedLevelForTesting scoped(level);
    Histogram parent(data), sibling(data), diff(data);
    parent.build(data, all, grads);
    sibling.build(data, subset, grads);
    diff.subtract_from(parent, sibling);
    Histogram sum(data);
    sum.add(diff);
    sum.add(sibling);
    return std::tuple(std::move(parent), std::move(diff), std::move(sum));
  };

  const auto [parent_s, diff_s, sum_s] = run(simd::Level::kScalar);
  for (std::uint32_t f = 0; f < parent_s.num_fields(); ++f) {
    // add(diff) + add(sibling) reassembles the parent exactly: quantized
    // accumulation is order-insensitive.
    const auto p = parent_s.field(f);
    const auto s = sum_s.field(f);
    for (std::size_t i = 0; i < p.size(); ++i) {
      EXPECT_EQ(p[i].g, s[i].g);
      EXPECT_EQ(p[i].h, s[i].h);
      EXPECT_EQ(p[i].count, s[i].count);
    }
  }
  for (const simd::Level level : {simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (simd::kernels(level).level != level) continue;  // skip, never fail
    const auto [parent_w, diff_w, sum_w] = run(level);
    for (std::uint32_t f = 0; f < parent_s.num_fields(); ++f) {
      const auto a = parent_s.field(f);
      const auto b = parent_w.field(f);
      const auto da = diff_s.field(f);
      const auto db = diff_w.field(f);
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].g, b[i].g) << simd::level_name(level);
        EXPECT_EQ(a[i].h, b[i].h);
        EXPECT_EQ(a[i].count, b[i].count);
        EXPECT_EQ(da[i].g, db[i].g);
        EXPECT_EQ(da[i].h, db[i].h);
        EXPECT_EQ(da[i].count, db[i].count);
      }
    }
  }
}

TEST(SimdPredict, HistogramBuffersAre64ByteAligned) {
  const auto data = synth_binned(200, 3);
  const Histogram h(data);
  EXPECT_TRUE(h.aligned_to(64));
  HistogramPool pool(data);
  Histogram a = pool.acquire();
  EXPECT_TRUE(a.aligned_to(64));
  pool.release(std::move(a));
  Histogram b = pool.acquire();  // recycled buffer keeps its alignment
  EXPECT_TRUE(b.aligned_to(64));
}

/// predict_many vs per-record Model::predict, EXPECT_EQ, at every
/// available level; n = 1003 leaves an uneven tail at every tile width.
void expect_predict_many_matches(const Model& model,
                                 const BinnedDataset& data) {
  const FlatEnsemble flat(model);
  ASSERT_EQ(flat.num_trees(), model.num_trees());
  const std::uint64_t n = data.num_records();
  std::vector<double> raw(n), out(n);
  for (const simd::Level level :
       {simd::Level::kScalar, simd::Level::kAvx2, simd::Level::kAvx512}) {
    if (simd::kernels(level).level != level) continue;  // skip, never fail
    const simd::ScopedLevelForTesting scoped(level);
    flat.predict_raw_many(data, 0, n, raw);
    flat.predict_many(data, 0, n, out);
    for (std::uint64_t r = 0; r < n; ++r) {
      EXPECT_EQ(raw[r], model.predict_raw(data, r))
          << simd::level_name(level) << " record " << r;
      EXPECT_EQ(out[r], model.predict(data, r))
          << simd::level_name(level) << " record " << r;
    }
    // A misaligned sub-range: tiles start mid-dataset and end on a
    // fractional tile.
    const std::uint64_t begin = 13, end = n - 7;
    std::vector<double> sub(end - begin);
    flat.predict_raw_many(data, begin, end, sub);
    for (std::uint64_t r = begin; r < end; ++r) {
      EXPECT_EQ(sub[r - begin], model.predict_raw(data, r));
    }
  }
}

TEST(SimdPredict, PredictManyMatchesPerRecordExactly) {
  const auto data = synth_binned(1003, 11);
  expect_predict_many_matches(train_model(data, 7, 5), data);
}

TEST(SimdPredict, PredictManyHandlesSingleLeafTrees) {
  const auto data = synth_binned(523, 13);
  // max_depth = 0: every tree is a bare root leaf; traversal must write
  // the root weight without a single routing step.
  expect_predict_many_matches(train_model(data, 3, 0), data);
}

}  // namespace
}  // namespace booster::gbdt
