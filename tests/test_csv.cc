#include "workloads/csv.h"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "workloads/synth.h"

namespace booster::workloads {
namespace {

gbdt::Dataset sample_dataset() {
  DatasetSpec spec;
  spec.name = "csv-test";
  spec.nominal_records = 300;
  spec.numeric_fields = 3;
  spec.categorical_cardinalities = {7, 4};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  return synthesize(spec, 300, 23);
}

TEST(Csv, RoundTripPreservesSchema) {
  const auto data = sample_dataset();
  std::stringstream buffer;
  save_csv(data, buffer);
  const auto loaded = load_csv(buffer);
  ASSERT_EQ(loaded.num_fields(), data.num_fields());
  ASSERT_EQ(loaded.num_records(), data.num_records());
  for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
    EXPECT_EQ(loaded.field(f).kind, data.field(f).kind);
    EXPECT_EQ(loaded.field(f).name, data.field(f).name);
    EXPECT_EQ(loaded.field(f).cardinality, data.field(f).cardinality);
  }
}

TEST(Csv, RoundTripPreservesValuesAndMissing) {
  const auto data = sample_dataset();
  std::stringstream buffer;
  save_csv(data, buffer);
  const auto loaded = load_csv(buffer);
  for (std::uint64_t r = 0; r < data.num_records(); ++r) {
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      if (data.field(f).kind == gbdt::FieldKind::kNumeric) {
        const float a = data.numeric_value(f, r);
        const float b = loaded.numeric_value(f, r);
        if (std::isnan(a)) {
          EXPECT_TRUE(std::isnan(b));
        } else {
          EXPECT_NEAR(a, b, std::abs(a) * 1e-5 + 1e-6);
        }
      } else {
        EXPECT_EQ(data.categorical_value(f, r), loaded.categorical_value(f, r));
      }
    }
    EXPECT_FLOAT_EQ(data.label(r), loaded.label(r));
  }
}

TEST(Csv, HandWrittenInput) {
  std::stringstream in(
      "num:age,cat:city:3,label\n"
      "25.5,0,1\n"
      ",2,0\n"
      "40,,1\n");
  const auto data = load_csv(in);
  ASSERT_EQ(data.num_records(), 3u);
  EXPECT_FLOAT_EQ(data.numeric_value(0, 0), 25.5f);
  EXPECT_TRUE(std::isnan(data.numeric_value(0, 1)));
  EXPECT_EQ(data.categorical_value(1, 1), 2);
  EXPECT_EQ(data.categorical_value(1, 2), gbdt::kMissingCategory);
  EXPECT_FLOAT_EQ(data.label(2), 1.0f);
}

TEST(Csv, SkipsBlankLines) {
  std::stringstream in("num:x,label\n1,0\n\n2,1\n");
  const auto data = load_csv(in);
  EXPECT_EQ(data.num_records(), 2u);
}

TEST(Csv, FileRoundTrip) {
  const auto data = sample_dataset();
  const std::string path = "/tmp/booster_test_data.csv";
  ASSERT_TRUE(save_csv_file(data, path));
  const auto loaded = load_csv_file(path);
  EXPECT_EQ(loaded.num_records(), data.num_records());
}

TEST(Csv, SaveToUnwritablePathFails) {
  EXPECT_FALSE(save_csv_file(sample_dataset(), "/nonexistent-dir/data.csv"));
}

}  // namespace
}  // namespace booster::workloads
