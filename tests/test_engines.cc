// Functional-equivalence tests: the BU-array engines must produce outputs
// bit-identical (up to float accumulation order) to the software library.
// This is the simulation counterpart of the paper's FPGA validation of the
// RTL against the software implementation.
#include "core/engines.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "gbdt/trainer.h"
#include "util/rng.h"
#include "workloads/synth.h"

namespace booster::core {
namespace {

using gbdt::BinnedDataset;
using gbdt::GradientPair;

struct Fixture {
  BinnedDataset data;
  std::vector<GradientPair> grads;
  std::vector<std::uint32_t> rows;
  gbdt::TrainResult train;
};

Fixture make_fixture(std::uint32_t numeric_fields, std::uint32_t cat_card,
                     std::uint64_t n = 1200, std::uint64_t seed = 9) {
  workloads::DatasetSpec spec;
  spec.name = "engine-test";
  spec.nominal_records = n;
  spec.numeric_fields = numeric_fields;
  if (cat_card > 0) spec.categorical_cardinalities = {cat_card, cat_card / 2};
  spec.missing_rate = 0.05;
  spec.loss = "logistic";
  const auto raw = workloads::synthesize(spec, n, seed);
  Fixture f{gbdt::Binner().bin(raw), {}, {}, gbdt::TrainResult{
      .model = gbdt::Model(0.0, gbdt::make_loss("logistic"))}};
  util::Rng rng(seed);
  f.grads.resize(n);
  for (auto& gp : f.grads) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  f.rows.resize(n);
  std::iota(f.rows.begin(), f.rows.end(), 0);
  gbdt::TrainerConfig cfg;
  cfg.num_trees = 3;
  cfg.max_depth = 4;
  cfg.loss = "logistic";
  f.train = gbdt::Trainer(cfg).train(f.data);
  return f;
}

void expect_histograms_equal(const gbdt::Histogram& a,
                             const gbdt::Histogram& b) {
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (std::uint32_t f = 0; f < a.num_fields(); ++f) {
    const auto fa = a.field(f);
    const auto fb = b.field(f);
    ASSERT_EQ(fa.size(), fb.size());
    for (std::size_t i = 0; i < fa.size(); ++i) {
      EXPECT_DOUBLE_EQ(fa[i].count, fb[i].count) << "field " << f << " bin " << i;
      EXPECT_NEAR(fa[i].g, fb[i].g, 1e-4);
      EXPECT_NEAR(fa[i].h, fb[i].h, 1e-4);
    }
  }
}

class HistogramEngineSweep
    : public ::testing::TestWithParam<std::tuple<MappingStrategy, int>> {};

TEST_P(HistogramEngineSweep, MatchesSoftwareHistogram) {
  const auto [strategy, cat_card] = GetParam();
  const auto f = make_fixture(5, static_cast<std::uint32_t>(cat_card));
  BoosterConfig cfg;
  HistogramEngine engine(cfg, BinnedFieldShape::of(f.data), strategy);
  const std::uint64_t cycles = engine.run(f.data, f.rows, f.grads);
  EXPECT_GT(cycles, 0u);

  gbdt::Histogram reference(f.data);
  reference.build(f.data, f.rows, f.grads);
  expect_histograms_equal(engine.harvest(f.data), reference);
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, HistogramEngineSweep,
    ::testing::Combine(::testing::Values(MappingStrategy::kNaivePack,
                                         MappingStrategy::kGroupByField),
                       ::testing::Values(0, 40, 300)));

TEST(HistogramEngine, SubsetRowsOnly) {
  const auto f = make_fixture(4, 0, 800);
  BoosterConfig cfg;
  HistogramEngine engine(cfg, BinnedFieldShape::of(f.data),
                         MappingStrategy::kGroupByField);
  const std::vector<std::uint32_t> subset(f.rows.begin(), f.rows.begin() + 100);
  engine.run(f.data, subset, f.grads);
  gbdt::Histogram reference(f.data);
  reference.build(f.data, subset, f.grads);
  expect_histograms_equal(engine.harvest(f.data), reference);
}

TEST(HistogramEngine, NaivePackingCostsMoreCyclesWhenFieldsShareSrams) {
  // Categorical dataset with small fields: naive packing serializes
  // updates, so the same work takes more cycles than group-by-field.
  const auto f = make_fixture(2, 30, 600);
  BoosterConfig cfg;
  HistogramEngine grouped(cfg, BinnedFieldShape::of(f.data),
                          MappingStrategy::kGroupByField);
  HistogramEngine naive(cfg, BinnedFieldShape::of(f.data),
                        MappingStrategy::kNaivePack);
  const auto cycles_grouped = grouped.run(f.data, f.rows, f.grads);
  const auto cycles_naive = naive.run(f.data, f.rows, f.grads);
  EXPECT_GT(cycles_naive, cycles_grouped);
}

TEST(HistogramEngine, ClearResetsState) {
  const auto f = make_fixture(3, 0, 200);
  BoosterConfig cfg;
  HistogramEngine engine(cfg, BinnedFieldShape::of(f.data),
                         MappingStrategy::kGroupByField);
  engine.run(f.data, f.rows, f.grads);
  engine.clear();
  const auto hist = engine.harvest(f.data);
  EXPECT_DOUBLE_EQ(hist.totals().count, 0.0);
}

TEST(EngineServiceRates, MatchEngineCycleAccounting) {
  // The co-sim's service-rate shims are the cycle-level contract with the
  // functional engines: each shim's steady rate must match the cycles the
  // corresponding engine actually counts (fill excluded).
  const auto f = make_fixture(6, 0, 2000);
  BoosterConfig cfg;
  cfg.clusters = 1;  // the functional engines model one histogram copy

  // Step 1, group-by-field: one update per SRAM per record.
  HistogramEngine hist(cfg, BinnedFieldShape::of(f.data),
                       MappingStrategy::kGroupByField);
  const auto hist_rate = histogram_service_rate(cfg, hist.mapping());
  const std::uint64_t hist_cycles = hist.run(f.data, f.rows, f.grads);
  EXPECT_EQ(hist_rate.fill_cycles, cfg.num_bus() / cfg.bus_link_span);
  EXPECT_NEAR(static_cast<double>(hist_cycles - hist_rate.fill_cycles),
              static_cast<double>(f.rows.size()) / hist_rate.records_per_cycle,
              1.0);

  // Step 1, naive packing on a categorical shape: serialization shows up
  // identically in the shim and the engine.
  const auto g = make_fixture(2, 30, 600);
  HistogramEngine naive(cfg, BinnedFieldShape::of(g.data),
                        MappingStrategy::kNaivePack);
  const auto naive_rate = histogram_service_rate(cfg, naive.mapping());
  const std::uint64_t naive_cycles = naive.run(g.data, g.rows, g.grads);
  // The engine charges the per-record busiest SRAM, the shim the mapping's
  // worst case; they agree when every record touches the busiest SRAM
  // (group-by-field always; naive within the busiest-SRAM bound).
  EXPECT_GE(static_cast<double>(naive_cycles - naive_rate.fill_cycles) + 1.0,
            static_cast<double>(g.rows.size()) / naive_rate.records_per_cycle *
                0.5);
  EXPECT_LE(static_cast<double>(naive_cycles - naive_rate.fill_cycles),
            static_cast<double>(g.rows.size()) / naive_rate.records_per_cycle +
                1.0);

  // Step 3: one predicate evaluation per BU per cycle.
  const auto& tree = f.train.model.trees().front();
  ASSERT_FALSE(tree.node(tree.root()).is_leaf);
  const PredicateEngine pred{cfg};
  const auto pres = pred.run(f.data, tree, tree.root(), f.rows);
  const auto part_rate = partition_service_rate(cfg);
  EXPECT_NEAR(static_cast<double>(pres.cycles - part_rate.fill_cycles),
              std::ceil(static_cast<double>(f.rows.size()) /
                        part_rate.records_per_cycle),
              1.0);

  // Step 5: avg_path_length * cycles_per_hop BU-cycles per record.
  const TraversalEngine trav{cfg};
  const auto tres = trav.run(f.data, tree);
  const auto trav_rate = traversal_service_rate(cfg, tres.avg_path_length);
  EXPECT_NEAR(static_cast<double>(tres.cycles - trav_rate.fill_cycles),
              static_cast<double>(f.data.num_records()) /
                  trav_rate.records_per_cycle,
              static_cast<double>(f.data.num_records()) /
                  trav_rate.records_per_cycle * 0.02 + 2.0);
}

TEST(PredicateEngine, MatchesTreeRouting) {
  const auto f = make_fixture(5, 20);
  const auto& tree = f.train.model.trees().front();
  ASSERT_FALSE(tree.node(tree.root()).is_leaf);
  const PredicateEngine engine{BoosterConfig{}};
  const auto result = engine.run(f.data, tree, tree.root(), f.rows);
  EXPECT_EQ(result.pred_true.size() + result.pred_false.size(), f.rows.size());
  EXPECT_GT(result.cycles, 0u);
  for (const auto r : result.pred_true) {
    EXPECT_TRUE(tree.goes_left(tree.root(), f.data.bin(tree.node(0).field, r)));
  }
  for (const auto r : result.pred_false) {
    EXPECT_FALSE(
        tree.goes_left(tree.root(), f.data.bin(tree.node(0).field, r)));
  }
}

TEST(TraversalEngine, MatchesTreePredict) {
  const auto f = make_fixture(5, 0);
  const auto& tree = f.train.model.trees().front();
  const TraversalEngine engine{BoosterConfig{}};
  const auto result = engine.run(f.data, tree);
  ASSERT_EQ(result.leaf_weights.size(), f.data.num_records());
  for (std::uint64_t r = 0; r < f.data.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(result.leaf_weights[r], tree.predict(f.data, r));
  }
  EXPECT_GT(result.avg_path_length, 0.0);
  EXPECT_LE(result.avg_path_length, 4.0);
}

TEST(InferenceEngine, MatchesModelPredictRaw) {
  const auto f = make_fixture(5, 10);
  const InferenceEngine engine{BoosterConfig{}};
  const auto result = engine.run(f.data, f.train.model);
  ASSERT_EQ(result.raw_predictions.size(), f.data.num_records());
  for (std::uint64_t r = 0; r < f.data.num_records(); ++r) {
    EXPECT_NEAR(result.raw_predictions[r],
                f.train.model.predict_raw(f.data, r), 1e-9);
  }
  // 3000 BUs / 3 trees -> 1000 replica groups.
  EXPECT_EQ(result.replicas, 1000u);
  EXPECT_GT(result.cycles, 0u);
}

TEST(InferenceEngine, MoreReplicasFewerCycles) {
  const auto f = make_fixture(4, 0, 2000);
  BoosterConfig small;
  small.inference_bus = 6;  // 2 replicas of 3 trees
  BoosterConfig large;
  large.inference_bus = 60;  // 20 replicas
  const auto slow = InferenceEngine(small).run(f.data, f.train.model);
  const auto fast = InferenceEngine(large).run(f.data, f.train.model);
  EXPECT_EQ(slow.replicas, 2u);
  EXPECT_EQ(fast.replicas, 20u);
  EXPECT_GT(slow.cycles, fast.cycles);
}

TEST(BoosterUnit, HoldsAndUpdates) {
  BoosterUnit bu(256, 512);
  EXPECT_TRUE(bu.holds(512));
  EXPECT_TRUE(bu.holds(767));
  EXPECT_FALSE(bu.holds(768));
  EXPECT_FALSE(bu.holds(511));
  bu.update(600, 1.5f, 0.5f);
  bu.update(600, 0.5f, 0.5f);
  EXPECT_DOUBLE_EQ(bu.bin(88).count, 2.0);
  EXPECT_NEAR(bu.bin(88).g, 2.0, 1e-6);
  EXPECT_EQ(bu.updates(), 2u);
  bu.clear();
  EXPECT_DOUBLE_EQ(bu.bin(88).count, 0.0);
  EXPECT_EQ(bu.updates(), 0u);
}

}  // namespace
}  // namespace booster::core
