#include "gbdt/tree.h"

#include <gtest/gtest.h>

#include "gbdt/binning.h"

namespace booster::gbdt {
namespace {

BinnedDataset two_field_data() {
  Dataset d;
  d.add_numeric_field("x");
  d.add_categorical_field("c", 3);
  d.resize(6);
  // x values 0..5 -> bins 1..6; categories 0..2 -> bins 1..3.
  for (std::uint64_t r = 0; r < 6; ++r) {
    d.set_numeric(0, r, static_cast<float>(r));
    d.set_categorical(1, r, static_cast<std::int32_t>(r % 3));
  }
  return Binner().bin(d);
}

SplitInfo numeric_split(std::uint32_t field, std::uint16_t threshold,
                        bool default_left = false) {
  SplitInfo s;
  s.field = field;
  s.kind = PredicateKind::kNumericLE;
  s.threshold_bin = threshold;
  s.default_left = default_left;
  return s;
}

TEST(Tree, StartsAsSingleLeaf) {
  Tree t;
  EXPECT_EQ(t.num_nodes(), 1u);
  EXPECT_TRUE(t.node(t.root()).is_leaf);
  EXPECT_EQ(t.num_leaves(), 1u);
  EXPECT_EQ(t.max_depth(), 0u);
}

TEST(Tree, SplitLeafCreatesChildren) {
  Tree t;
  const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 3));
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_FALSE(t.node(t.root()).is_leaf);
  EXPECT_TRUE(t.node(l).is_leaf);
  EXPECT_TRUE(t.node(r).is_leaf);
  EXPECT_EQ(t.node(l).depth, 1);
  EXPECT_EQ(t.max_depth(), 1u);
  EXPECT_EQ(t.num_leaves(), 2u);
}

TEST(Tree, NumericRoutingByThreshold) {
  Tree t;
  t.split_leaf(t.root(), numeric_split(0, 3));
  EXPECT_TRUE(t.goes_left(t.root(), 1));
  EXPECT_TRUE(t.goes_left(t.root(), 3));
  EXPECT_FALSE(t.goes_left(t.root(), 4));
}

TEST(Tree, MissingFollowsDefaultDirection) {
  Tree left_default;
  left_default.split_leaf(left_default.root(), numeric_split(0, 3, true));
  EXPECT_TRUE(left_default.goes_left(left_default.root(), 0));
  Tree right_default;
  right_default.split_leaf(right_default.root(), numeric_split(0, 3, false));
  EXPECT_FALSE(right_default.goes_left(right_default.root(), 0));
}

TEST(Tree, CategoricalEqualityRouting) {
  Tree t;
  SplitInfo s;
  s.field = 1;
  s.kind = PredicateKind::kCategoryEqual;
  s.threshold_bin = 2;
  t.split_leaf(t.root(), s);
  EXPECT_TRUE(t.goes_left(t.root(), 2));
  EXPECT_FALSE(t.goes_left(t.root(), 1));
  EXPECT_FALSE(t.goes_left(t.root(), 3));
}

TEST(Tree, PredictReturnsLeafWeight) {
  const auto data = two_field_data();
  Tree t;
  const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 3));
  t.set_leaf_weight(l, -1.5);
  t.set_leaf_weight(r, 2.5);
  // Record 0 has x bin 1 (<=3) -> left; record 5 has bin 6 -> right.
  EXPECT_DOUBLE_EQ(t.predict(data, 0), -1.5);
  EXPECT_DOUBLE_EQ(t.predict(data, 5), 2.5);
}

TEST(Tree, PathLengthCountsEdges) {
  const auto data = two_field_data();
  Tree t;
  const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 3));
  t.split_leaf(r, numeric_split(0, 5));
  EXPECT_EQ(t.path_length(data, 0), 1u);  // left leaf at depth 1
  EXPECT_EQ(t.path_length(data, 5), 2u);  // right subtree at depth 2
}

TEST(Tree, RelevantFieldsDeduplicated) {
  Tree t;
  const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 2));
  t.split_leaf(l, numeric_split(0, 1));
  SplitInfo cat;
  cat.field = 1;
  cat.kind = PredicateKind::kCategoryEqual;
  cat.threshold_bin = 1;
  t.split_leaf(r, cat);
  const auto fields = t.relevant_fields();
  ASSERT_EQ(fields.size(), 2u);
  EXPECT_EQ(fields[0], 0u);
  EXPECT_EQ(fields[1], 1u);
}

TEST(Tree, TableBytesEightPerNode) {
  Tree t;
  t.split_leaf(t.root(), numeric_split(0, 1));
  EXPECT_EQ(t.table_bytes(), 3u * 8u);
}

TEST(Model, SumsTreesAndBaseScore) {
  const auto data = two_field_data();
  Model m(0.5, make_loss("squared"));
  for (int i = 0; i < 3; ++i) {
    Tree t;
    const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 3));
    t.set_leaf_weight(l, 0.1);
    t.set_leaf_weight(r, -0.1);
    m.add_tree(std::move(t));
  }
  EXPECT_NEAR(m.predict_raw(data, 0), 0.5 + 0.3, 1e-12);
  EXPECT_NEAR(m.predict_raw(data, 5), 0.5 - 0.3, 1e-12);
}

TEST(Model, LogisticTransformApplied) {
  const auto data = two_field_data();
  Model m(0.0, make_loss("logistic"));
  EXPECT_NEAR(m.predict(data, 0), 0.5, 1e-12);
}

TEST(Model, AvgPathLengthAndMaxDepth) {
  const auto data = two_field_data();
  Model m(0.0, make_loss("squared"));
  Tree t;
  const auto [l, r] = t.split_leaf(t.root(), numeric_split(0, 3));
  t.split_leaf(r, numeric_split(0, 5));
  m.add_tree(std::move(t));
  EXPECT_EQ(m.max_tree_depth(), 2u);
  const double avg = m.avg_path_length(data);
  EXPECT_GT(avg, 1.0);
  EXPECT_LT(avg, 2.0);
}

}  // namespace
}  // namespace booster::gbdt
