#include "gbdt/layout.h"

#include <gtest/gtest.h>

namespace booster::gbdt {
namespace {

TEST(RecordLayout, NarrowFieldsOneBytePerField) {
  const auto layout = RecordLayout::from_field_features({10, 256, 200}, 256);
  EXPECT_EQ(layout.record_bytes, 3u);
  EXPECT_EQ(layout.field_slot_bytes[0], 1u);
  EXPECT_EQ(layout.field_slot_bytes[1], 1u);
}

TEST(RecordLayout, WideFieldRepeatsBytePerSram) {
  // Paper SS III-C extension 3: a field spread over k SRAMs repeats its bin
  // byte k times so the fixed left-to-right distribution stays one-to-one.
  const auto layout = RecordLayout::from_field_features({257, 512, 513}, 256);
  EXPECT_EQ(layout.field_slot_bytes[0], 2u);
  EXPECT_EQ(layout.field_slot_bytes[1], 2u);
  EXPECT_EQ(layout.field_slot_bytes[2], 3u);
  EXPECT_EQ(layout.record_bytes, 7u);
}

TEST(RecordLayout, ZeroFeatureFieldStillOccupiesOneSlot) {
  const auto layout = RecordLayout::from_field_features({0}, 256);
  EXPECT_EQ(layout.record_bytes, 1u);
}

TEST(RecordLayout, RowMajorPacksTwoSmallRecords) {
  RecordLayout layout;
  layout.record_bytes = 28;  // Higgs-like
  EXPECT_DOUBLE_EQ(layout.row_major_bytes_per_record(), 32.0);
}

TEST(RecordLayout, RowMajorHalfBlockBoundary) {
  RecordLayout layout;
  layout.record_bytes = 32;  // exactly half: still packs two per block
  EXPECT_DOUBLE_EQ(layout.row_major_bytes_per_record(), 32.0);
  layout.record_bytes = 33;  // just over half: whole block each
  EXPECT_DOUBLE_EQ(layout.row_major_bytes_per_record(), 64.0);
}

TEST(RecordLayout, RowMajorMultiBlockRoundsUp) {
  RecordLayout layout;
  layout.record_bytes = 115;  // IoT-like -> 2 blocks
  EXPECT_DOUBLE_EQ(layout.row_major_bytes_per_record(), 128.0);
  layout.record_bytes = 129;  // 3 blocks
  EXPECT_DOUBLE_EQ(layout.row_major_bytes_per_record(), 192.0);
}

}  // namespace
}  // namespace booster::gbdt
