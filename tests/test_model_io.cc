#include "gbdt/model_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "gbdt/metrics.h"
#include "gbdt/trainer.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

struct Trained {
  BinnedDataset data;
  Model model;
};

Trained train_small(const std::string& loss, std::uint32_t trees = 5) {
  workloads::DatasetSpec spec;
  spec.name = "io-test";
  spec.nominal_records = 1500;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {6};
  spec.missing_rate = 0.05;
  spec.loss = loss;
  auto binned = Binner().bin(workloads::synthesize(spec, 1500, 17));
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 4;
  cfg.loss = loss;
  auto result = Trainer(cfg).train(binned);
  return Trained{std::move(binned), std::move(result.model)};
}

TEST(ModelIo, RoundTripPreservesPredictions) {
  const auto t = train_small("logistic");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  ASSERT_EQ(loaded.num_trees(), t.model.num_trees());
  EXPECT_DOUBLE_EQ(loaded.base_score(), t.model.base_score());
  for (std::uint64_t r = 0; r < t.data.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.predict_raw(t.data, r),
                     t.model.predict_raw(t.data, r));
  }
}

TEST(ModelIo, RoundTripPreservesLossTransform) {
  const auto t = train_small("logistic");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  EXPECT_EQ(loaded.loss().name(), "logistic");
  for (std::uint64_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(loaded.predict(t.data, r), t.model.predict(t.data, r));
  }
}

TEST(ModelIo, RoundTripAllLossKinds) {
  for (const char* loss : {"squared", "logistic", "ranking"}) {
    const auto t = train_small(loss, 3);
    std::stringstream buffer;
    save_model(t.model, buffer);
    const Model loaded = load_model(buffer);
    for (std::uint64_t r = 0; r < 20; ++r) {
      EXPECT_DOUBLE_EQ(loaded.predict_raw(t.data, r),
                       t.model.predict_raw(t.data, r))
          << loss;
    }
  }
}

TEST(ModelIo, PreservesTreeStructure) {
  const auto t = train_small("squared");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  for (std::uint32_t i = 0; i < loaded.num_trees(); ++i) {
    EXPECT_EQ(loaded.trees()[i].num_nodes(), t.model.trees()[i].num_nodes());
    EXPECT_EQ(loaded.trees()[i].num_leaves(), t.model.trees()[i].num_leaves());
    EXPECT_EQ(loaded.trees()[i].max_depth(), t.model.trees()[i].max_depth());
    EXPECT_EQ(loaded.trees()[i].relevant_fields(),
              t.model.trees()[i].relevant_fields());
  }
}

TEST(ModelIo, FileRoundTrip) {
  const auto t = train_small("logistic", 2);
  const std::string path = "/tmp/booster_test_model.txt";
  ASSERT_TRUE(save_model_file(t.model, path));
  const Model loaded = load_model_file(path);
  EXPECT_DOUBLE_EQ(rmse(loaded, t.data), rmse(t.model, t.data));
}

TEST(ModelIo, SaveToUnwritablePathFails) {
  const auto t = train_small("squared", 1);
  EXPECT_FALSE(save_model_file(t.model, "/nonexistent-dir/model.txt"));
}

TEST(ModelIo, SingleLeafModel) {
  // An ensemble whose trees never split must round-trip too.
  Model m(0.25, make_loss("squared"));
  Tree stump;
  stump.set_leaf_weight(stump.root(), 1.5);
  m.add_tree(std::move(stump));
  std::stringstream buffer;
  save_model(m, buffer);
  const Model loaded = load_model(buffer);
  EXPECT_EQ(loaded.num_trees(), 1u);
  EXPECT_DOUBLE_EQ(loaded.trees()[0].node(0).weight, 1.5);
}

TEST(ModelIo, FormatIsVersioned) {
  Model m(0.0, make_loss("squared"));
  std::stringstream buffer;
  save_model(m, buffer);
  EXPECT_EQ(buffer.str().rfind("booster-model v1", 0), 0u);
}

}  // namespace
}  // namespace booster::gbdt
