#include "gbdt/model_io.h"

#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>

#include "gbdt/metrics.h"
#include "gbdt/trainer.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

struct Trained {
  BinnedDataset data;
  Model model;
};

Trained train_small(const std::string& loss, std::uint32_t trees = 5) {
  workloads::DatasetSpec spec;
  spec.name = "io-test";
  spec.nominal_records = 1500;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {6};
  spec.missing_rate = 0.05;
  spec.loss = loss;
  auto binned = Binner().bin(workloads::synthesize(spec, 1500, 17));
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 4;
  cfg.loss = loss;
  auto result = Trainer(cfg).train(binned);
  return Trained{std::move(binned), std::move(result.model)};
}

TEST(ModelIo, RoundTripPreservesPredictions) {
  const auto t = train_small("logistic");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  ASSERT_EQ(loaded.num_trees(), t.model.num_trees());
  EXPECT_DOUBLE_EQ(loaded.base_score(), t.model.base_score());
  for (std::uint64_t r = 0; r < t.data.num_records(); ++r) {
    EXPECT_DOUBLE_EQ(loaded.predict_raw(t.data, r),
                     t.model.predict_raw(t.data, r));
  }
}

TEST(ModelIo, RoundTripPreservesLossTransform) {
  const auto t = train_small("logistic");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  EXPECT_EQ(loaded.loss().name(), "logistic");
  for (std::uint64_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(loaded.predict(t.data, r), t.model.predict(t.data, r));
  }
}

TEST(ModelIo, RoundTripAllLossKinds) {
  for (const char* loss : {"squared", "logistic", "ranking"}) {
    const auto t = train_small(loss, 3);
    std::stringstream buffer;
    save_model(t.model, buffer);
    const Model loaded = load_model(buffer);
    for (std::uint64_t r = 0; r < 20; ++r) {
      EXPECT_DOUBLE_EQ(loaded.predict_raw(t.data, r),
                       t.model.predict_raw(t.data, r))
          << loss;
    }
  }
}

TEST(ModelIo, PreservesTreeStructure) {
  const auto t = train_small("squared");
  std::stringstream buffer;
  save_model(t.model, buffer);
  const Model loaded = load_model(buffer);
  for (std::uint32_t i = 0; i < loaded.num_trees(); ++i) {
    EXPECT_EQ(loaded.trees()[i].num_nodes(), t.model.trees()[i].num_nodes());
    EXPECT_EQ(loaded.trees()[i].num_leaves(), t.model.trees()[i].num_leaves());
    EXPECT_EQ(loaded.trees()[i].max_depth(), t.model.trees()[i].max_depth());
    EXPECT_EQ(loaded.trees()[i].relevant_fields(),
              t.model.trees()[i].relevant_fields());
  }
}

TEST(ModelIo, FileRoundTrip) {
  const auto t = train_small("logistic", 2);
  const std::string path = "/tmp/booster_test_model.txt";
  ASSERT_TRUE(save_model_file(t.model, path));
  const Model loaded = load_model_file(path);
  EXPECT_DOUBLE_EQ(rmse(loaded, t.data), rmse(t.model, t.data));
}

TEST(ModelIo, SaveToUnwritablePathFails) {
  const auto t = train_small("squared", 1);
  EXPECT_FALSE(save_model_file(t.model, "/nonexistent-dir/model.txt"));
}

TEST(ModelIo, SingleLeafModel) {
  // An ensemble whose trees never split must round-trip too.
  Model m(0.25, make_loss("squared"));
  Tree stump;
  stump.set_leaf_weight(stump.root(), 1.5);
  m.add_tree(std::move(stump));
  std::stringstream buffer;
  save_model(m, buffer);
  const Model loaded = load_model(buffer);
  EXPECT_EQ(loaded.num_trees(), 1u);
  EXPECT_DOUBLE_EQ(loaded.trees()[0].node(0).weight, 1.5);
}

TEST(ModelIo, FormatIsVersioned) {
  Model m(0.0, make_loss("squared"));
  std::stringstream buffer;
  save_model(m, buffer);
  EXPECT_EQ(buffer.str().rfind("booster-model v1", 0), 0u);
}

// --- Checked container: header + CRC-32 over the payload. ---------------

TEST(ModelIoChecked, GoldenBytesForStumpModel) {
  // Pins the exact container bytes of a deterministic single-stump model:
  // any accidental format drift (header spelling, payload framing, CRC
  // polynomial or byte order) breaks this test before it breaks a
  // cross-version serving fleet.
  Model m(0.25, make_loss("squared"));
  Tree stump;
  stump.set_leaf_weight(stump.root(), 1.5);
  m.add_tree(std::move(stump));
  std::ostringstream out;
  save_model_checked(m, out);
  const std::string expected_payload =
      "booster-model v1\n"
      "base_score 0.25\n"
      "loss squared\n"
      "trees 1\n"
      "tree 0 nodes 1\n"
      "node 0 leaf 1.5\n";
  EXPECT_EQ(out.str(),
            "booster-model-container v1 bytes 85 crc32 cb61c094\n" +
                expected_payload);
  ASSERT_EQ(expected_payload.size(), 85u);
}

TEST(ModelIoChecked, RoundTripPreservesPredictions) {
  const auto t = train_small("logistic", 3);
  std::stringstream buffer;
  save_model_checked(t.model, buffer);
  std::optional<Model> loaded;
  ASSERT_EQ(load_model_checked(buffer, &loaded), ModelFileStatus::kOk);
  ASSERT_TRUE(loaded.has_value());
  for (std::uint64_t r = 0; r < t.data.num_records(); ++r) {
    EXPECT_EQ(loaded->predict(t.data, r), t.model.predict(t.data, r));
  }
}

TEST(ModelIoChecked, FileRoundTripAndDistinctFailureModes) {
  const auto t = train_small("squared", 2);
  const std::string path = "/tmp/booster_test_model_checked.bin";
  ASSERT_TRUE(save_model_checked_file(t.model, path));
  std::optional<Model> loaded;
  ASSERT_EQ(load_model_checked_file(path, &loaded), ModelFileStatus::kOk);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(rmse(*loaded, t.data), rmse(t.model, t.data));

  std::ifstream in(path, std::ios::binary);
  std::stringstream good;
  good << in.rdbuf();
  const std::string bytes = good.str();

  // Missing file: kIoError, *out untouched.
  std::optional<Model> untouched;
  EXPECT_EQ(load_model_checked_file("/nonexistent/model.bin", &untouched),
            ModelFileStatus::kIoError);
  EXPECT_FALSE(untouched.has_value());

  // A bare v1 file (no container header): kBadMagic.
  {
    std::istringstream bad("booster-model v1\nbase_score 0\n");
    EXPECT_EQ(load_model_checked(bad, &untouched),
              ModelFileStatus::kBadMagic);
  }

  // Future container version: kBadVersion.
  {
    std::string v2 = bytes;
    v2.replace(v2.find(" v1 "), 4, " v9 ");
    std::istringstream bad(v2);
    EXPECT_EQ(load_model_checked(bad, &untouched),
              ModelFileStatus::kBadVersion);
  }

  // Torn write: payload shorter than the header's byte count.
  {
    std::istringstream bad(bytes.substr(0, bytes.size() - 7));
    EXPECT_EQ(load_model_checked(bad, &untouched),
              ModelFileStatus::kTruncated);
  }

  // Bit rot inside the payload: right length, wrong CRC.
  {
    std::string flipped = bytes;
    flipped[flipped.size() - 2] ^= 0x01;
    std::istringstream bad(flipped);
    EXPECT_EQ(load_model_checked(bad, &untouched),
              ModelFileStatus::kBadChecksum);
  }
  EXPECT_FALSE(untouched.has_value());

  // Status names are stable (they appear in serve /reload error bodies).
  EXPECT_STREQ(model_file_status_name(ModelFileStatus::kOk), "ok");
  EXPECT_STREQ(model_file_status_name(ModelFileStatus::kBadChecksum),
               "bad-checksum");
}

}  // namespace
}  // namespace booster::gbdt
