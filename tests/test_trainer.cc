#include "gbdt/trainer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gbdt/metrics.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

using trace::StepKind;

BinnedDataset make_data(std::uint64_t n, const std::string& loss,
                        std::uint64_t seed = 5) {
  workloads::DatasetSpec spec;
  spec.name = "unit";
  spec.nominal_records = n;
  spec.numeric_fields = 6;
  spec.categorical_cardinalities = {8};
  spec.missing_rate = 0.05;
  spec.loss = loss;
  spec.label_structure = workloads::LabelStructure::kDiffuse;
  spec.label_noise = 0.3;
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig small_config(const std::string& loss, std::uint32_t trees = 8,
                           std::uint32_t depth = 4) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = depth;
  cfg.loss = loss;
  return cfg;
}

TEST(Trainer, LossDecreasesOverTrees) {
  const auto data = make_data(2000, "logistic");
  const auto result = Trainer(small_config("logistic", 12)).train(data);
  ASSERT_EQ(result.tree_stats.size(), 12u);
  EXPECT_LT(result.tree_stats.back().train_loss,
            result.tree_stats.front().train_loss);
  // Monotone non-increasing within numerical noise.
  for (std::size_t i = 1; i < result.tree_stats.size(); ++i) {
    EXPECT_LE(result.tree_stats[i].train_loss,
              result.tree_stats[i - 1].train_loss + 1e-9);
  }
}

TEST(Trainer, RespectsMaxDepth) {
  const auto data = make_data(3000, "squared");
  const auto result = Trainer(small_config("squared", 6, 3)).train(data);
  for (const auto& tree : result.model.trees()) {
    EXPECT_LE(tree.max_depth(), 3u);
  }
  EXPECT_LE(result.avg_leaf_depth, 3.0);
}

TEST(Trainer, DeterministicGivenSameData) {
  const auto data = make_data(1000, "squared");
  const auto a = Trainer(small_config("squared")).train(data);
  const auto b = Trainer(small_config("squared")).train(data);
  for (std::uint64_t r = 0; r < 50; ++r) {
    EXPECT_DOUBLE_EQ(a.model.predict_raw(data, r),
                     b.model.predict_raw(data, r));
  }
}

TEST(Trainer, ClassifierBeatsChance) {
  const auto data = make_data(4000, "logistic");
  const auto result = Trainer(small_config("logistic", 20, 5)).train(data);
  EXPECT_GT(auc(result.model, data), 0.75);
}

TEST(Trainer, RegressionReducesRmse) {
  const auto data = make_data(4000, "squared");
  // Baseline RMSE: predicting the label mean.
  double mean = 0.0;
  for (const float y : data.labels()) mean += y;
  mean /= static_cast<double>(data.num_records());
  double base_sq = 0.0;
  for (const float y : data.labels()) base_sq += (y - mean) * (y - mean);
  const double base_rmse =
      std::sqrt(base_sq / static_cast<double>(data.num_records()));

  const auto result = Trainer(small_config("squared", 25, 5)).train(data);
  EXPECT_LT(rmse(result.model, data), 0.8 * base_rmse);
}

// ---------- Step-trace structural invariants ----------

TEST(Trainer, TraceRootHistogramCoversAllRecords) {
  const auto data = make_data(1500, "squared");
  trace::StepTrace tr;
  (void)Trainer(small_config("squared", 3)).train(data, &tr);
  // The first histogram event of every tree is the root over all records.
  for (const auto& e : tr.events()) {
    if (e.kind == StepKind::kHistogram && e.depth == 0) {
      EXPECT_EQ(e.records, data.num_records());
      EXPECT_EQ(e.fields_touched, data.num_fields());
      EXPECT_FALSE(e.used_sibling_subtraction);
    }
  }
}

TEST(Trainer, TraceChildHistogramsAreSmallerHalves) {
  const auto data = make_data(1500, "squared");
  trace::StepTrace tr;
  (void)Trainer(small_config("squared", 3)).train(data, &tr);
  for (const auto& e : tr.events()) {
    if (e.kind == StepKind::kHistogram && e.depth > 0) {
      EXPECT_TRUE(e.used_sibling_subtraction);
      // A smaller child covers at most half the records of any node, hence
      // at most half the dataset.
      EXPECT_LE(e.records, data.num_records() / 2 + 1);
    }
  }
}

TEST(Trainer, TraceTraversalOncePerTree) {
  const auto data = make_data(1000, "squared");
  trace::StepTrace tr;
  const auto result = Trainer(small_config("squared", 5)).train(data, &tr);
  int traversals = 0;
  for (const auto& e : tr.events()) {
    if (e.kind == StepKind::kTraversal) {
      ++traversals;
      EXPECT_EQ(e.records, data.num_records());
      EXPECT_GT(e.avg_path_length, 0.0);
      EXPECT_LE(e.avg_path_length, 4.0);  // max_depth
    }
  }
  EXPECT_EQ(traversals, 5);
  EXPECT_EQ(result.model.num_trees(), 5u);
}

TEST(Trainer, TracePartitionMatchesSplitEvents) {
  // Every partition event follows a successful split; partitions touch one
  // field.
  const auto data = make_data(1000, "squared");
  trace::StepTrace tr;
  (void)Trainer(small_config("squared", 4)).train(data, &tr);
  std::uint64_t partitions = 0;
  std::uint64_t splits = 0;
  for (const auto& e : tr.events()) {
    if (e.kind == StepKind::kPartition) {
      ++partitions;
      EXPECT_EQ(e.fields_touched, 1u);
      EXPECT_GT(e.records, 0u);
    }
    if (e.kind == StepKind::kSplitSelect) ++splits;
  }
  EXPECT_GT(partitions, 0u);
  // Each split-select either produces a partition or terminates the leaf.
  EXPECT_LE(partitions, splits);
}

TEST(Trainer, TraceSplitScansAllBins) {
  const auto data = make_data(1000, "squared");
  trace::StepTrace tr;
  (void)Trainer(small_config("squared", 2)).train(data, &tr);
  for (const auto& e : tr.events()) {
    if (e.kind == StepKind::kSplitSelect) {
      EXPECT_EQ(e.bins_scanned, data.total_bins());
    }
  }
}

TEST(Trainer, WorkloadInfoFilled) {
  const auto data = make_data(800, "logistic");
  trace::WorkloadInfo info;
  (void)Trainer(small_config("logistic", 3)).train(data, nullptr, &info);
  EXPECT_EQ(info.nominal_records, 800u);
  EXPECT_EQ(info.fields, 7u);
  EXPECT_EQ(info.categorical_fields, 1u);
  EXPECT_EQ(info.features_onehot, 6u + 8u);
  EXPECT_EQ(info.total_bins, data.total_bins());
  EXPECT_EQ(info.bins_per_field.size(), 7u);
  EXPECT_EQ(info.record_bytes, data.layout().record_bytes);
  EXPECT_EQ(info.trees, 3u);
  EXPECT_GT(info.avg_leaf_depth, 0.0);
}

TEST(Trainer, MinNodeRecordsStopsSplitting) {
  const auto data = make_data(500, "squared");
  TrainerConfig cfg = small_config("squared", 2, 6);
  cfg.min_node_records = 400;  // only the root is big enough
  const auto result = Trainer(cfg).train(data);
  for (const auto& tree : result.model.trees()) {
    EXPECT_LE(tree.max_depth(), 1u);
  }
}

TEST(Trainer, PredictionsMatchTraversalAccumulation) {
  // predict_raw must equal base + sum of leaf weights, by reconstruction.
  const auto data = make_data(300, "squared");
  const auto result = Trainer(small_config("squared", 6, 3)).train(data);
  for (std::uint64_t r = 0; r < 20; ++r) {
    double acc = result.model.base_score();
    for (const auto& tree : result.model.trees()) {
      acc += tree.predict(data, r);
    }
    EXPECT_DOUBLE_EQ(result.model.predict_raw(data, r), acc);
  }
}

// Depth sweep: realized depth never exceeds the budget and leaf counts stay
// within the binary-tree bound.
class DepthSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(DepthSweep, DepthAndLeafBounds) {
  const auto data = make_data(1200, "squared");
  const auto result =
      Trainer(small_config("squared", 3, GetParam())).train(data);
  for (const auto& tree : result.model.trees()) {
    EXPECT_LE(tree.max_depth(), GetParam());
    EXPECT_LE(tree.num_leaves(), 1u << GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, DepthSweep, ::testing::Values(1u, 2u, 4u, 6u));

}  // namespace
}  // namespace booster::gbdt
