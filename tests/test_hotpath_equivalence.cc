// Hot-path equivalence properties (ISSUE 1 acceptance): the row-major /
// threaded histogram build and the in-place arena partition must produce
// the same results as the seed's scalar reference -- counts and row orders
// exactly, G/H sums within FP-reduction tolerance, and whole trained
// models with identical structure/split decisions at 1, 2, and 8 threads.
// Also asserts the steady-state allocation-free property: histogram pool
// misses stop growing with more trees, and partitioning uses one arena.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/histogram.h"
#include "gbdt/hotpath.h"
#include "gbdt/split.h"
#include "gbdt/trainer.h"
#include "util/rng.h"
#include "util/simd.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset random_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "hotpath";
  spec.nominal_records = n;
  spec.numeric_fields = 6;
  spec.categorical_cardinalities = {7, 3};
  spec.missing_rate = 0.15;
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

std::vector<GradientPair> random_gradients(std::uint64_t n,
                                           std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<GradientPair> g(n);
  for (auto& gp : g) {
    gp.g = static_cast<float>(rng.normal());
    gp.h = static_cast<float>(rng.uniform(0.1, 1.0));
  }
  return g;
}

void expect_histograms_equivalent(const Histogram& got, const Histogram& ref) {
  ASSERT_EQ(got.num_fields(), ref.num_fields());
  for (std::uint32_t f = 0; f < got.num_fields(); ++f) {
    const auto a = got.field(f);
    const auto b = ref.field(f);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      // Counts are integer additions: exact at any accumulation order.
      EXPECT_DOUBLE_EQ(a[i].count, b[i].count) << "field " << f << " bin " << i;
      EXPECT_NEAR(a[i].g, b[i].g, 1e-6);
      EXPECT_NEAR(a[i].h, b[i].h, 1e-6);
    }
  }
}

TEST(HotPathEquivalence, RowMajorBuildMatchesColumnGatherReference) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    const auto data = random_binned(3000, seed);
    const auto grads = random_gradients(data.num_records(), seed + 100);
    // An arbitrary row subset in arbitrary order (as mid-tree nodes see).
    util::Rng rng(seed + 200);
    std::vector<std::uint32_t> rows;
    for (std::uint32_t r = 0; r < data.num_records(); ++r) {
      if (rng.uniform(0.0, 1.0) < 0.6) rows.push_back(r);
    }
    for (std::size_t i = rows.size(); i > 1; --i) {
      std::swap(rows[i - 1], rows[rng.next_below(i)]);
    }

    Histogram row_major(data), reference(data);
    row_major.build(data, rows, grads);
    reference.build_reference(data, rows, grads);
    expect_histograms_equivalent(row_major, reference);
  }
}

TEST(HotPathEquivalence, ParallelBuildMatchesReferenceAt1_2_8Threads) {
  const auto data = random_binned(5000, 7);
  const auto grads = random_gradients(data.num_records(), 8);
  std::vector<std::uint32_t> rows(data.num_records());
  std::iota(rows.begin(), rows.end(), 0u);

  Histogram reference(data);
  reference.build_reference(data, rows, grads);

  for (const unsigned threads : {1u, 2u, 8u}) {
    util::ThreadPool pool(threads);
    HistogramPool hist_pool(data);
    std::vector<Histogram> partials_scratch;
    Histogram got = hist_pool.acquire();
    build_histogram_parallel(got, data, rows, grads, pool, hist_pool,
                             partials_scratch);
    expect_histograms_equivalent(got, reference);
  }
}

TEST(HotPathEquivalence, ArenaPartitionMatchesScalarReferenceExactly) {
  for (const std::uint64_t seed : {11ull, 12ull}) {
    const auto data = random_binned(4000, seed);
    const std::uint64_t n = data.num_records();

    // Candidate splits covering numeric/categorical and both default
    // directions, on a mid-array span (as interior tree nodes see).
    std::vector<SplitInfo> splits;
    for (std::uint32_t f = 0; f < data.num_fields(); ++f) {
      SplitInfo s;
      s.field = f;
      const bool numeric = data.field_bins(f).kind == FieldKind::kNumeric;
      s.kind = numeric ? PredicateKind::kNumericLE
                       : PredicateKind::kCategoryEqual;
      s.threshold_bin =
          static_cast<std::uint16_t>(data.field_bins(f).num_bins / 2);
      if (s.threshold_bin == 0) s.threshold_bin = 1;
      s.default_left = (f % 2) == 0;
      splits.push_back(s);
    }

    for (const auto& split : splits) {
      const std::uint64_t begin = n / 5;
      const std::uint64_t end = n - n / 7;
      std::vector<std::uint32_t> initial(n);
      std::iota(initial.begin(), initial.end(), 0u);
      // Shuffle so the span holds an arbitrary permutation.
      util::Rng rng(seed + split.field);
      for (std::size_t i = n; i > 1; --i) {
        std::swap(initial[i - 1], initial[rng.next_below(i)]);
      }

      // Scalar reference: the seed's two-vector stable partition.
      const auto& col = data.column(split.field);
      std::vector<std::uint32_t> expect_left, expect_right;
      for (std::uint64_t i = begin; i < end; ++i) {
        const std::uint32_t r = initial[i];
        (split_goes_left(split, col[r]) ? expect_left : expect_right)
            .push_back(r);
      }

      for (const unsigned threads : {1u, 2u, 8u}) {
        util::ThreadPool pool(threads);
        const std::vector<std::uint32_t> src = initial;
        std::vector<std::uint32_t> dst(n, 0xFFFFFFFFu);
        std::vector<std::uint64_t> chunk_counts(pool.num_threads() + 1);
        const std::uint64_t n_left = expect_left.size();
        partition_to(src, dst, begin, end, n_left, data, split, pool,
                     chunk_counts);
        for (std::uint64_t i = 0; i < n_left; ++i) {
          ASSERT_EQ(dst[begin + i], expect_left[i]);
        }
        for (std::uint64_t i = 0; i < expect_right.size(); ++i) {
          ASSERT_EQ(dst[begin + n_left + i], expect_right[i]);
        }
        // Source and the destination outside the span: untouched.
        for (std::uint64_t i = 0; i < n; ++i) {
          ASSERT_EQ(src[i], initial[i]);
        }
        for (std::uint64_t i = 0; i < begin; ++i) {
          ASSERT_EQ(dst[i], 0xFFFFFFFFu);
        }
        for (std::uint64_t i = end; i < n; ++i) {
          ASSERT_EQ(dst[i], 0xFFFFFFFFu);
        }
      }
    }
  }
}

TrainResult train_with_threads(const BinnedDataset& data, unsigned threads,
                               std::uint32_t trees = 6) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 5;
  cfg.loss = "logistic";
  cfg.num_threads = threads;
  return Trainer(cfg).train(data);
}

TEST(HotPathEquivalence, TrainedModelsIdenticalAcross1_2_8Threads) {
  for (const std::uint64_t seed : {21ull, 22ull}) {
    const auto data = random_binned(6000, seed);
    const auto ref = train_with_threads(data, 1);
    for (const unsigned threads : {2u, 8u}) {
      const auto got = train_with_threads(data, threads);
      ASSERT_EQ(got.model.num_trees(), ref.model.num_trees());
      for (std::uint32_t t = 0; t < ref.model.num_trees(); ++t) {
        const Tree& a = got.model.trees()[t];
        const Tree& b = ref.model.trees()[t];
        ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
        for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
          const TreeNode& x = a.node(static_cast<std::int32_t>(id));
          const TreeNode& y = b.node(static_cast<std::int32_t>(id));
          // Split decisions are exact across thread counts.
          ASSERT_EQ(x.is_leaf, y.is_leaf);
          ASSERT_EQ(x.field, y.field);
          ASSERT_EQ(x.kind, y.kind);
          ASSERT_EQ(x.threshold_bin, y.threshold_bin);
          ASSERT_EQ(x.default_left, y.default_left);
          ASSERT_EQ(x.left, y.left);
          ASSERT_EQ(x.right, y.right);
          // Weights/gains only differ by FP reduction order.
          EXPECT_NEAR(x.weight, y.weight, 1e-9);
          EXPECT_NEAR(x.gain, y.gain, 1e-6);
        }
      }
      for (std::uint64_t r = 0; r < data.num_records(); r += 97) {
        EXPECT_NEAR(got.model.predict_raw(data, r),
                    ref.model.predict_raw(data, r), 1e-6);
      }
      EXPECT_EQ(got.hot_path.threads, threads);
    }
  }
}

TEST(HotPathEquivalence, SteadyStateIsAllocationFree) {
  const auto data = random_binned(4000, 31);
  for (const unsigned threads : {1u, 4u}) {
    const auto short_run = train_with_threads(data, threads, /*trees=*/3);
    const auto long_run = train_with_threads(data, threads, /*trees=*/12);
    // More trees request more node histograms...
    EXPECT_GT(long_run.hot_path.histogram_acquires,
              short_run.hot_path.histogram_acquires);
    // ...but fresh buffer allocations stop once the pool is warm: the
    // per-node Histogram(data) of the seed is gone.
    EXPECT_EQ(long_run.hot_path.histogram_allocations,
              short_run.hot_path.histogram_allocations);
    // Partitioning uses exactly one persistent arena + scratch (uint32
    // row indices), not per-node row vectors.
    EXPECT_EQ(long_run.hot_path.arena_bytes,
              2 * data.num_records() * sizeof(std::uint32_t));
  }
}

TrainResult train_at_level(const BinnedDataset& data, unsigned threads,
                           std::uint32_t shards, util::simd::Level level) {
  const util::simd::ScopedLevelForTesting scoped(level);
  TrainerConfig cfg;
  cfg.num_trees = 5;
  cfg.max_depth = 5;
  cfg.loss = "logistic";
  cfg.num_threads = threads;
  cfg.num_shards = shards;
  return Trainer(cfg).train(data);
}

// The SIMD kernels perform the same IEEE operations elementwise as the
// scalar loops (util/simd.h), so trained models must match the scalar
// reference *bit for bit* -- EXPECT_EQ on weights and gains, not
// tolerances -- at every dispatch level, thread count, and shard count.
// Levels this host cannot execute are skipped, not failed.
TEST(HotPathEquivalence, TrainedModelsBitIdenticalAcrossSimdLevels) {
  const auto data = random_binned(4000, 41);
  for (const unsigned threads : {1u, 8u}) {
    for (const std::uint32_t shards : {1u, 3u}) {
      const auto ref =
          train_at_level(data, threads, shards, util::simd::Level::kScalar);
      EXPECT_STREQ(ref.hot_path.simd, "scalar");
      for (const auto level :
           {util::simd::Level::kAvx2, util::simd::Level::kAvx512}) {
        if (util::simd::kernels(level).level != level) continue;  // skip
        const auto got = train_at_level(data, threads, shards, level);
        EXPECT_STREQ(got.hot_path.simd, util::simd::level_name(level));
        ASSERT_EQ(got.model.num_trees(), ref.model.num_trees())
            << "threads=" << threads << " shards=" << shards
            << " level=" << util::simd::level_name(level);
        for (std::uint32_t t = 0; t < ref.model.num_trees(); ++t) {
          const Tree& a = got.model.trees()[t];
          const Tree& b = ref.model.trees()[t];
          ASSERT_EQ(a.num_nodes(), b.num_nodes()) << "tree " << t;
          for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
            const TreeNode& x = a.node(static_cast<std::int32_t>(id));
            const TreeNode& y = b.node(static_cast<std::int32_t>(id));
            ASSERT_EQ(x.is_leaf, y.is_leaf);
            ASSERT_EQ(x.field, y.field);
            ASSERT_EQ(x.kind, y.kind);
            ASSERT_EQ(x.threshold_bin, y.threshold_bin);
            ASSERT_EQ(x.default_left, y.default_left);
            ASSERT_EQ(x.left, y.left);
            ASSERT_EQ(x.right, y.right);
            EXPECT_EQ(x.weight, y.weight) << "tree " << t << " node " << id;
            EXPECT_EQ(x.gain, y.gain) << "tree " << t << " node " << id;
          }
        }
        ASSERT_EQ(got.tree_stats.size(), ref.tree_stats.size());
        for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
          EXPECT_EQ(got.tree_stats[t].train_loss, ref.tree_stats[t].train_loss);
        }
        for (std::uint64_t r = 0; r < data.num_records(); r += 41) {
          EXPECT_EQ(got.model.predict_raw(data, r),
                    ref.model.predict_raw(data, r));
        }
      }
    }
  }
}

TEST(HotPathEquivalence, CountU64RoundTripsExactCounts) {
  BinStats s;
  s.count = 12345.0;
  EXPECT_EQ(s.count_u64(), 12345u);
  s.count = 0.0;
  EXPECT_EQ(s.count_u64(), 0u);
}

}  // namespace
}  // namespace booster::gbdt
