// End-to-end integration: the full pipeline (synthesize -> bin -> train ->
// trace -> every performance model) must reproduce the paper's headline
// qualitative results. These are the same invariants the bench binaries
// print; here they are asserted.
#include <gtest/gtest.h>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "core/engines.h"
#include "energy/energy_model.h"
#include "gbdt/metrics.h"
#include "util/stats.h"
#include "workloads/runner.h"

namespace booster {
namespace {

using baselines::CpuLikeModel;
using core::BoosterModel;

const std::vector<workloads::WorkloadResult>& all_workloads() {
  static const auto results = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 8000;
    cfg.sim_trees = 8;
    return workloads::run_paper_workloads(cfg);
  }();
  return results;
}

TEST(Integration, AcceleratedStepsDominateSequentialTime) {
  // Fig 6: steps 1+3+5 are ~90-98+% of sequential time, lowest for Mq2008.
  const CpuLikeModel seq(baselines::sequential_cpu_params());
  double min_share = 1.0;
  std::string min_name;
  for (const auto& w : all_workloads()) {
    const auto t = seq.train_cost(w.trace, w.info);
    const double share = 1.0 - t.fraction(trace::StepKind::kSplitSelect);
    EXPECT_GT(share, 0.90) << w.spec.name;
    if (share < min_share) {
      min_share = share;
      min_name = w.spec.name;
    }
  }
  EXPECT_EQ(min_name, "Mq2008");
}

TEST(Integration, BoosterBeatsGpuBeatsCpuEverywhere) {
  // Fig 7 ordering on every benchmark.
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const CpuLikeModel gpu(baselines::ideal_gpu_params());
  const BoosterModel booster;
  for (const auto& w : all_workloads()) {
    const double cpu_t = cpu.train_cost(w.trace, w.info).total();
    const double gpu_t = gpu.train_cost(w.trace, w.info).total();
    const double bst_t = booster.train_cost(w.trace, w.info).total();
    EXPECT_LT(gpu_t, cpu_t) << w.spec.name;
    EXPECT_LT(bst_t, gpu_t) << w.spec.name;
  }
}

TEST(Integration, SpeedupShapeMatchesPaper) {
  // Fig 7 magnitudes: GPU < 2.1x; Booster in the paper's ballpark with the
  // right extremes (IoT highest, Flight/Mq2008 low end) and a geomean near
  // 11x.
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const CpuLikeModel gpu(baselines::ideal_gpu_params());
  const BoosterModel booster;
  std::vector<double> booster_speedups;
  double iot_speedup = 0.0;
  double max_speedup = 0.0;
  for (const auto& w : all_workloads()) {
    const double cpu_t = cpu.train_cost(w.trace, w.info).total();
    const double gpu_speedup = cpu_t / gpu.train_cost(w.trace, w.info).total();
    EXPECT_GT(gpu_speedup, 1.5) << w.spec.name;
    EXPECT_LT(gpu_speedup, 2.1) << w.spec.name;
    const double speedup = cpu_t / booster.train_cost(w.trace, w.info).total();
    EXPECT_GT(speedup, 3.0) << w.spec.name;
    booster_speedups.push_back(speedup);
    if (w.spec.name == "IoT") iot_speedup = speedup;
    max_speedup = std::max(max_speedup, speedup);
  }
  EXPECT_EQ(iot_speedup, max_speedup) << "IoT must achieve the top speedup";
  const double geomean = util::geomean(booster_speedups);
  EXPECT_GT(geomean, 7.0);
  EXPECT_LT(geomean, 16.0);
}

TEST(Integration, BoosterAcceleratedStepsAreSmall) {
  // Fig 8: Booster makes the accelerated steps a small fraction of the
  // Ideal 32-core total.
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const BoosterModel booster;
  for (const auto& w : all_workloads()) {
    const double base = cpu.train_cost(w.trace, w.info).total();
    const auto b = booster.train_cost(w.trace, w.info);
    const double accel = b[trace::StepKind::kHistogram] +
                         b[trace::StepKind::kPartition] +
                         b[trace::StepKind::kTraversal];
    EXPECT_LT(accel / base, 0.20) << w.spec.name;
  }
}

TEST(Integration, ScalingUpRecordsImprovesBoosterSpeedup) {
  // Fig 12: 10x records -> higher speedups everywhere.
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const BoosterModel booster;
  for (const auto& w : all_workloads()) {
    const auto scaled = w.trace.scaled_by(10.0);
    auto info10 = w.info;
    info10.nominal_records *= 10;
    const double s1 = cpu.train_cost(w.trace, w.info).total() /
                      booster.train_cost(w.trace, w.info).total();
    const double s10 = cpu.train_cost(scaled, info10).total() /
                       booster.train_cost(scaled, info10).total();
    EXPECT_GE(s10, s1 * 0.999) << w.spec.name;
  }
}

TEST(Integration, InferenceSpeedupClusters) {
  // Fig 13: deep-tree benchmarks cluster at one speedup; IoT (shallow
  // trees) falls below it.
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const BoosterModel booster;
  double iot = 0.0;
  util::Accumulator deep;
  for (const auto& w : all_workloads()) {
    perf::InferenceSpec spec;
    spec.records = static_cast<double>(w.spec.nominal_records);
    spec.trees = w.info.trees;
    spec.max_depth = w.train.model.max_tree_depth();
    spec.avg_path_length = w.train.model.avg_path_length(w.binned);
    spec.record_bytes = w.info.record_bytes;
    const double speedup =
        cpu.inference_cost(spec) / booster.inference_cost(spec);
    if (w.spec.name == "IoT") {
      iot = speedup;
    } else {
      deep.add(speedup);
    }
  }
  EXPECT_LT(iot, deep.min()) << "IoT's shallow trees must lower its speedup";
  EXPECT_GT(deep.mean(), 30.0);
  EXPECT_LT(deep.max() - deep.min(), 10.0) << "deep-tree cluster is tight";
}

TEST(Integration, FunctionalEnginesAgreeWithTrainerOnRealWorkload) {
  // Cross-check the BU-array inference engine against the trained model on
  // an actual benchmark sample (beyond the unit fixtures).
  const auto& w = all_workloads()[1];  // Higgs
  const core::InferenceEngine engine{core::BoosterConfig{}};
  const auto result = engine.run(w.binned, w.train.model);
  for (std::uint64_t r = 0; r < std::min<std::uint64_t>(200, w.binned.num_records());
       ++r) {
    EXPECT_NEAR(result.raw_predictions[r],
                w.train.model.predict_raw(w.binned, r), 1e-9);
  }
}

TEST(Integration, EnergyOrderingHoldsOnAllBenchmarks) {
  const CpuLikeModel cpu(baselines::ideal_cpu_params());
  const CpuLikeModel gpu(baselines::ideal_gpu_params());
  const BoosterModel booster;
  const energy::EnergyModel em;
  for (const auto& w : all_workloads()) {
    const auto e_cpu = em.energy(cpu.train_activity(w.trace, w.info));
    const auto e_gpu = em.energy(gpu.train_activity(w.trace, w.info));
    const auto e_bst = em.energy(booster.train_activity(w.trace, w.info));
    EXPECT_LT(e_bst.sram_joules, e_cpu.sram_joules) << w.spec.name;
    EXPECT_LE(e_bst.dram_joules, e_cpu.dram_joules) << w.spec.name;
    EXPECT_GT(e_gpu.sram_joules, e_cpu.sram_joules) << w.spec.name;
  }
}

TEST(Integration, ModelsAreDeterministicAcrossRuns) {
  workloads::RunnerConfig cfg;
  cfg.sim_records = 3000;
  cfg.sim_trees = 3;
  const auto a = workloads::run_workload(workloads::spec_by_name("Flight"), cfg);
  const auto b = workloads::run_workload(workloads::spec_by_name("Flight"), cfg);
  const BoosterModel booster;
  EXPECT_DOUBLE_EQ(booster.train_cost(a.trace, a.info).total(),
                   booster.train_cost(b.trace, b.info).total());
}

}  // namespace
}  // namespace booster
