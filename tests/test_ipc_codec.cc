// Property and golden tests of the distributed-training wire format
// (ipc::HistogramCodec). Three layers of guarantee:
//   * encode -> decode is a *fixpoint* on randomized histograms -- prime
//     bin counts, zero/negative/denormal gradient sums, values at the
//     quantized-exact capacity -- compared bit for bit (doubles via their
//     uint64 patterns, so -0.0 and denormals cannot hide);
//   * the byte layout is pinned against a literal golden frame: any
//     accidental layout change (endianness, field order, header size,
//     checksum definition) fails loudly instead of silently versioning;
//   * every malformed-frame class is rejected with its own distinct
//     DecodeStatus -- truncated, oversized, bad checksum, bad version,
//     bad magic, trailing bytes -- which is what the retry protocol's
//     diagnostics (and the fault-injection tests) key off.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "gbdt/histogram.h"
#include "ipc/codec.h"
#include "util/rng.h"

namespace booster::ipc {
namespace {

using gbdt::BinStats;
using gbdt::Histogram;

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

void expect_histograms_bit_equal(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.num_fields(), b.num_fields());
  for (std::uint32_t f = 0; f < a.num_fields(); ++f) {
    ASSERT_EQ(a.field(f).size(), b.field(f).size()) << "field " << f;
    for (std::size_t i = 0; i < a.field(f).size(); ++i) {
      EXPECT_EQ(bits(a.field(f)[i].count), bits(b.field(f)[i].count))
          << "field " << f << " bin " << i;
      EXPECT_EQ(bits(a.field(f)[i].g), bits(b.field(f)[i].g))
          << "field " << f << " bin " << i;
      EXPECT_EQ(bits(a.field(f)[i].h), bits(b.field(f)[i].h))
          << "field " << f << " bin " << i;
    }
  }
}

TEST(IpcCodec, FrameEncodeDecodeIsFixpoint) {
  const std::vector<std::uint8_t> payload = {1, 2, 3, 0xff, 0, 42};
  const auto frame =
      HistogramCodec::encode_frame(MessageType::kSplitDecision, 12345, payload);
  EXPECT_EQ(frame.size(), kHeaderBytes + payload.size());
  Frame out;
  ASSERT_EQ(HistogramCodec::decode_frame(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MessageType::kSplitDecision);
  EXPECT_EQ(out.seq, 12345u);
  EXPECT_EQ(out.payload, payload);
}

TEST(IpcCodec, EmptyPayloadFrameRoundTrips) {
  const auto frame =
      HistogramCodec::encode_frame(MessageType::kGoodbye, 1, {});
  Frame out;
  ASSERT_EQ(HistogramCodec::decode_frame(frame, &out), DecodeStatus::kOk);
  EXPECT_EQ(out.type, MessageType::kGoodbye);
  EXPECT_TRUE(out.payload.empty());
}

TEST(IpcCodec, HistogramEncodeDecodeFixpointOnRandomizedShapes) {
  util::Rng rng(20260728);
  // Prime bin counts on purpose: no power-of-two alignment accident can
  // make a layout bug invisible.
  const std::vector<std::vector<std::uint32_t>> shapes = {
      {2}, {7, 13}, {31, 2, 5}, {3, 3, 3, 3, 101}, {257, 11}};
  for (const auto& shape : shapes) {
    Histogram h(shape);
    for (std::uint32_t f = 0; f < h.num_fields(); ++f) {
      for (BinStats& b : h.mutable_field(f)) {
        b.count = static_cast<double>(rng.next_below(1000));
        b.g = gbdt::quantize_stat(rng.uniform(-100.0, 100.0));
        b.h = gbdt::quantize_stat(rng.uniform(0.0, 100.0));
      }
    }
    // Edge values in fixed bins: zero, negative zero, denormal, the
    // quantized-exact capacity, and a max-magnitude negative sum.
    h.mutable_field(0)[0] = BinStats{0.0, -0.0, 4.9406564584124654e-324};
    h.mutable_field(0)[shape[0] - 1] =
        BinStats{9007199254740992.0, gbdt::kStatSumCapacity,
                 -gbdt::kStatSumCapacity};

    std::vector<std::uint8_t> payload;
    HistogramCodec::encode_histogram(h, &payload);
    EXPECT_EQ(payload.size(), HistogramCodec::encoded_histogram_bytes(h));

    ByteReader r(payload);
    Histogram decoded;
    ASSERT_TRUE(HistogramCodec::decode_histogram(r, &decoded));
    EXPECT_TRUE(r.exhausted());
    expect_histograms_bit_equal(h, decoded);

    // The pooled variant decodes into a same-shape buffer...
    Histogram into(shape);
    ByteReader r2(payload);
    ASSERT_TRUE(HistogramCodec::decode_histogram_into(r2, &into));
    expect_histograms_bit_equal(h, into);
  }
  // ...and rejects a shape mismatch instead of writing out of shape.
  Histogram h(std::vector<std::uint32_t>{2, 3});
  std::vector<std::uint8_t> payload;
  HistogramCodec::encode_histogram(h, &payload);
  Histogram wrong_shape(std::vector<std::uint32_t>{3, 2});
  ByteReader r(payload);
  EXPECT_FALSE(HistogramCodec::decode_histogram_into(r, &wrong_shape));
}

TEST(IpcCodec, GoldenFrameLayoutIsPinned) {
  // A shard-histogram frame built from fixed inputs must serialize to
  // exactly these bytes: 'BSTR' magic, version 1, type 1, seq 7, length
  // 0x90, CRC, then {tree=1, build_seq=2, shard=3} and the 2-field
  // [2, 3]-bin histogram, every double little-endian by bit pattern.
  std::vector<std::uint32_t> bins = {2, 3};
  Histogram h(bins);
  h.mutable_field(0)[0] = BinStats{1.0, 0.5, 0.25};
  h.mutable_field(0)[1] = BinStats{2.0, -0.5, 1.0};
  h.mutable_field(1)[0] = BinStats{0.0, 0.0, 0.0};
  h.mutable_field(1)[1] = BinStats{3.0, 1.5, 0.75};
  h.mutable_field(1)[2] = BinStats{1.0, -1.0, 2.0};
  ShardHistogramMsg msg;
  msg.tree = 1;
  msg.build_seq = 2;
  msg.shard = 3;
  msg.histogram = std::move(h);
  const auto frame = HistogramCodec::encode_frame(
      MessageType::kShardHistogram, 7,
      HistogramCodec::encode_shard_histogram(msg));

  const std::vector<std::uint8_t> golden = {
      0x42, 0x53, 0x54, 0x52, 0x01, 0x00, 0x01, 0x00, 0x07, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x90, 0x00, 0x00, 0x00, 0xb1, 0x7b, 0x23, 0xb5,
      0x01, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
      0x02, 0x00, 0x00, 0x00, 0x02, 0x00, 0x00, 0x00, 0x03, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xe0, 0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xd0, 0x3f,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xe0, 0xbf, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x08, 0x40, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xf8, 0x3f, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xe8, 0x3f,
      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xf0, 0x3f, 0x00, 0x00, 0x00, 0x00,
      0x00, 0x00, 0xf0, 0xbf, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x40,
  };
  EXPECT_EQ(frame, golden);

  // And the golden bytes decode back to the original message.
  Frame decoded;
  ASSERT_EQ(HistogramCodec::decode_frame(golden, &decoded), DecodeStatus::kOk);
  ShardHistogramMsg out;
  ASSERT_TRUE(HistogramCodec::decode_shard_histogram(decoded.payload, &out));
  EXPECT_EQ(out.tree, 1u);
  EXPECT_EQ(out.build_seq, 2u);
  EXPECT_EQ(out.shard, 3u);
  expect_histograms_bit_equal(out.histogram, msg.histogram);
}

TEST(IpcCodec, MalformedFramesAreRejectedWithDistinctErrors) {
  const std::vector<std::uint8_t> payload = {10, 20, 30, 40};
  const auto good =
      HistogramCodec::encode_frame(MessageType::kShardSummary, 9, payload);
  Frame out;
  ASSERT_EQ(HistogramCodec::decode_frame(good, &out), DecodeStatus::kOk);

  // Truncated: shorter than the header, and shorter than the declared
  // payload.
  for (const std::size_t cut : {std::size_t{0}, std::size_t{5},
                                kHeaderBytes - 1, good.size() - 1}) {
    std::vector<std::uint8_t> frame(good.begin(), good.begin() + cut);
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kTruncated)
        << "cut at " << cut;
  }

  // Bad magic.
  {
    auto frame = good;
    frame[0] ^= 0xff;
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kBadMagic);
  }

  // Bad (future) version.
  {
    auto frame = good;
    frame[4] = 0x7f;
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kBadVersion);
  }

  // Oversized: a length field beyond kMaxPayloadBytes is rejected before
  // any allocation, whatever the actual frame size.
  {
    auto frame = good;
    frame[16] = 0xff;
    frame[17] = 0xff;
    frame[18] = 0xff;
    frame[19] = 0xff;
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kBadLength);
  }

  // Bad checksum: a single flipped payload bit.
  {
    auto frame = good;
    frame[kHeaderBytes + 1] ^= 0x04;
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kBadChecksum);
  }

  // Bad checksum: a flipped *header* bit (the sequence number) -- the CRC
  // covers the header, so a corrupted seq cannot poison reordering.
  {
    auto frame = good;
    frame[8] ^= 0x01;
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kBadChecksum);
  }

  // Trailing bytes beyond the declared payload.
  {
    auto frame = good;
    frame.push_back(0);
    EXPECT_EQ(HistogramCodec::decode_frame(frame, &out),
              DecodeStatus::kTrailing);
  }

  // Every status has a distinct diagnostic name.
  EXPECT_STRNE(decode_status_name(DecodeStatus::kTruncated),
               decode_status_name(DecodeStatus::kBadChecksum));
  EXPECT_STRNE(decode_status_name(DecodeStatus::kBadVersion),
               decode_status_name(DecodeStatus::kBadMagic));
  EXPECT_STRNE(decode_status_name(DecodeStatus::kBadLength),
               decode_status_name(DecodeStatus::kTrailing));
}

TEST(IpcCodec, SplitDecisionRoundTripsBitExactly) {
  SplitDecisionMsg msg;
  msg.tree = 11;
  msg.decision_seq = 42;
  msg.has_split = true;
  msg.split.field = 5;
  msg.split.kind = gbdt::PredicateKind::kCategoryEqual;
  msg.split.threshold_bin = 199;
  msg.split.default_left = true;
  msg.split.gain = 0.1234567890123456789;
  msg.split.left = BinStats{101.0, -3.0000000596046448, 7.25};
  msg.split.right = BinStats{899.0, 2.5, 0.0};
  const auto payload = HistogramCodec::encode_split_decision(msg);
  SplitDecisionMsg out;
  ASSERT_TRUE(HistogramCodec::decode_split_decision(payload, &out));
  EXPECT_EQ(out.tree, msg.tree);
  EXPECT_EQ(out.decision_seq, msg.decision_seq);
  EXPECT_TRUE(out.has_split);
  EXPECT_EQ(out.split.field, msg.split.field);
  EXPECT_EQ(out.split.kind, msg.split.kind);
  EXPECT_EQ(out.split.threshold_bin, msg.split.threshold_bin);
  EXPECT_EQ(out.split.default_left, msg.split.default_left);
  EXPECT_EQ(bits(out.split.gain), bits(msg.split.gain));
  EXPECT_EQ(bits(out.split.left.g), bits(msg.split.left.g));
  EXPECT_EQ(bits(out.split.right.h), bits(msg.split.right.h));

  // The no-split decision is the one-byte-shorter form.
  SplitDecisionMsg leaf;
  leaf.tree = 11;
  leaf.decision_seq = 43;
  leaf.has_split = false;
  const auto leaf_payload = HistogramCodec::encode_split_decision(leaf);
  EXPECT_LT(leaf_payload.size(), payload.size());
  SplitDecisionMsg leaf_out;
  ASSERT_TRUE(HistogramCodec::decode_split_decision(leaf_payload, &leaf_out));
  EXPECT_FALSE(leaf_out.has_split);

  // A truncated payload (CRC-valid but short -- i.e. a protocol bug, not
  // line noise) is rejected, not misread.
  std::vector<std::uint8_t> short_payload(payload.begin(), payload.end() - 3);
  EXPECT_FALSE(HistogramCodec::decode_split_decision(short_payload, &out));
}

TEST(IpcCodec, TreeSummaryAndVerdictRoundTripBitExactly) {
  TreeCompleteMsg tree;
  tree.tree = 3;
  gbdt::TreeNode interior;
  interior.is_leaf = false;
  interior.field = 7;
  interior.kind = gbdt::PredicateKind::kNumericLE;
  interior.threshold_bin = 88;
  interior.default_left = true;
  interior.left = 1;
  interior.right = 2;
  interior.depth = 0;
  interior.gain = 17.125;
  gbdt::TreeNode leaf;
  leaf.is_leaf = true;
  leaf.depth = 1;
  leaf.weight = -0.0625;
  tree.nodes = {interior, leaf, leaf};
  const auto payload = HistogramCodec::encode_tree_complete(tree);
  TreeCompleteMsg tree_out;
  ASSERT_TRUE(HistogramCodec::decode_tree_complete(payload, &tree_out));
  ASSERT_EQ(tree_out.nodes.size(), 3u);
  EXPECT_EQ(tree_out.nodes[0].field, 7u);
  EXPECT_EQ(tree_out.nodes[0].threshold_bin, 88);
  EXPECT_EQ(bits(tree_out.nodes[0].gain), bits(17.125));
  EXPECT_EQ(bits(tree_out.nodes[1].weight), bits(-0.0625));
  EXPECT_EQ(tree_out.nodes[1].depth, 1);

  ShardSummaryMsg summary{9, 2, 5, 123456.0, 78.9050292968750};
  const auto spayload = HistogramCodec::encode_shard_summary(summary);
  ShardSummaryMsg summary_out;
  ASSERT_TRUE(HistogramCodec::decode_shard_summary(spayload, &summary_out));
  EXPECT_EQ(summary_out.shard_begin, 2u);
  EXPECT_EQ(summary_out.shard_end, 5u);
  EXPECT_EQ(bits(summary_out.hops), bits(summary.hops));
  EXPECT_EQ(bits(summary_out.quantized_loss), bits(summary.quantized_loss));

  TreeVerdictMsg verdict{7, 0.034245967864990234, true, false};
  const auto vpayload = HistogramCodec::encode_tree_verdict(verdict);
  TreeVerdictMsg verdict_out;
  ASSERT_TRUE(HistogramCodec::decode_tree_verdict(vpayload, &verdict_out));
  EXPECT_EQ(verdict_out.tree, 7u);
  EXPECT_EQ(bits(verdict_out.train_loss), bits(verdict.train_loss));
  EXPECT_TRUE(verdict_out.stop_training);
  EXPECT_FALSE(verdict_out.early_stopped);
}

TEST(IpcCodec, ShardAssignRoundTripsBitExactly) {
  ShardAssignMsg msg;
  msg.tree = 13;
  msg.view_epoch = 5;
  msg.num_shards = 8;
  msg.shard_begin = 3;
  msg.shard_end = 6;
  msg.final_assign = false;
  msg.early_stopped = false;
  const auto payload = HistogramCodec::encode_shard_assign(msg);
  ShardAssignMsg out;
  ASSERT_TRUE(HistogramCodec::decode_shard_assign(payload, &out));
  EXPECT_EQ(out.tree, 13u);
  EXPECT_EQ(out.view_epoch, 5u);
  EXPECT_EQ(out.num_shards, 8u);
  EXPECT_EQ(out.shard_begin, 3u);
  EXPECT_EQ(out.shard_end, 6u);
  EXPECT_FALSE(out.final_assign);
  EXPECT_FALSE(out.early_stopped);

  // The final assignment (the elastic exit signal) keeps its flags.
  msg.final_assign = true;
  msg.early_stopped = true;
  msg.shard_begin = msg.shard_end = 0;
  const auto fin = HistogramCodec::encode_shard_assign(msg);
  ASSERT_TRUE(HistogramCodec::decode_shard_assign(fin, &out));
  EXPECT_TRUE(out.final_assign);
  EXPECT_TRUE(out.early_stopped);

  std::vector<std::uint8_t> short_payload(payload.begin(), payload.end() - 1);
  EXPECT_FALSE(HistogramCodec::decode_shard_assign(short_payload, &out));
}

TEST(IpcCodec, CatchUpRoundTripsBitExactly) {
  CatchUpMsg msg;
  gbdt::TreeNode interior;
  interior.is_leaf = false;
  interior.field = 2;
  interior.kind = gbdt::PredicateKind::kNumericLE;
  interior.threshold_bin = 41;
  interior.default_left = false;
  interior.left = 1;
  interior.right = 2;
  interior.depth = 0;
  interior.gain = 3.0517578125e-05;
  gbdt::TreeNode leaf;
  leaf.is_leaf = true;
  leaf.depth = 1;
  leaf.weight = 0.30000000000000004;  // not representable exactly: bit test
  CatchUpMsg::TreeEntry entry;
  entry.nodes = {interior, leaf, leaf};
  entry.train_loss = 0.6931471805599453;
  msg.trees.push_back(entry);
  entry.train_loss = 0.5772156649015329;
  msg.trees.push_back(entry);

  const auto payload = HistogramCodec::encode_catch_up(msg);
  CatchUpMsg out;
  ASSERT_TRUE(HistogramCodec::decode_catch_up(payload, &out));
  ASSERT_EQ(out.trees.size(), 2u);
  ASSERT_EQ(out.trees[0].nodes.size(), 3u);
  EXPECT_EQ(out.trees[0].nodes[0].field, 2u);
  EXPECT_EQ(out.trees[0].nodes[0].threshold_bin, 41);
  EXPECT_EQ(bits(out.trees[0].nodes[0].gain), bits(interior.gain));
  EXPECT_EQ(bits(out.trees[0].nodes[1].weight), bits(leaf.weight));
  EXPECT_EQ(bits(out.trees[0].train_loss), bits(0.6931471805599453));
  EXPECT_EQ(bits(out.trees[1].train_loss), bits(0.5772156649015329));

  // The empty catch-up (joining a world with no finished trees yet) is
  // valid and distinct from a decode failure.
  const auto empty_payload = HistogramCodec::encode_catch_up(CatchUpMsg{});
  ASSERT_TRUE(HistogramCodec::decode_catch_up(empty_payload, &out));
  EXPECT_TRUE(out.trees.empty());

  std::vector<std::uint8_t> short_payload(payload.begin(), payload.end() - 2);
  EXPECT_FALSE(HistogramCodec::decode_catch_up(short_payload, &out));
}

}  // namespace
}  // namespace booster::ipc
