#include "core/broadcast_bus.h"

#include <gtest/gtest.h>

namespace booster::core {
namespace {

TEST(BroadcastBus, PipelineDepthIsBusOverLinkSpan) {
  BroadcastBus bus({3200, 16, 64});
  EXPECT_EQ(bus.pipeline_depth(), 200u);  // the paper's example
}

TEST(BroadcastBus, DepthRoundsUp) {
  BroadcastBus bus({100, 16, 64});
  EXPECT_EQ(bus.pipeline_depth(), 7u);
}

TEST(BroadcastBus, CyclesPerItemByPayload) {
  BroadcastBus bus({3200, 16, 64});
  EXPECT_EQ(bus.cycles_per_item(64), 1u);
  EXPECT_EQ(bus.cycles_per_item(65), 2u);
  EXPECT_EQ(bus.cycles_per_item(8), 1u);
  EXPECT_EQ(bus.cycles_per_item(512), 8u);
}

TEST(BroadcastBus, StreamIncludesFill) {
  BroadcastBus bus({3200, 16, 64});
  EXPECT_EQ(bus.stream_cycles(0, 64), 0u);
  EXPECT_EQ(bus.stream_cycles(1, 64), 201u);
  EXPECT_EQ(bus.stream_cycles(1000, 64), 1200u);
}

TEST(BroadcastBus, FillOverheadNegligibleForMillionsOfRecords) {
  // The paper's claim: with millions of records the 200-cycle fill/drain
  // is negligible.
  BroadcastBus bus({3200, 16, 64});
  EXPECT_LT(bus.fill_overhead_fraction(1'000'000, 64), 3e-4);
  // But substantial for tiny streams.
  EXPECT_GT(bus.fill_overhead_fraction(100, 64), 0.5);
}

TEST(BroadcastBus, WiderLinksShortenFill) {
  BroadcastBus narrow({3200, 8, 64});
  BroadcastBus wide({3200, 32, 64});
  EXPECT_GT(narrow.pipeline_depth(), wide.pipeline_depth());
}

}  // namespace
}  // namespace booster::core
