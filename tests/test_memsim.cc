#include <gtest/gtest.h>

#include "memsim/bandwidth_probe.h"
#include "memsim/bank.h"
#include "memsim/channel.h"
#include "memsim/memory_system.h"

namespace booster::memsim {
namespace {

DramConfig small_config() {
  DramConfig cfg;
  cfg.channels = 2;
  cfg.banks_per_channel = 2;
  cfg.queue_depth = 8;
  return cfg;
}

// ---------- Bank timing ----------

TEST(Bank, StartsPrechargedAndActivatable) {
  const DramConfig cfg;
  Bank bank(cfg);
  EXPECT_FALSE(bank.is_open());
  EXPECT_TRUE(bank.can_activate(0));
  EXPECT_FALSE(bank.can_precharge(0));
}

TEST(Bank, RespectsTrcdBeforeColumnAccess) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(100, 5);
  EXPECT_TRUE(bank.is_open());
  EXPECT_EQ(bank.open_row(), 5);
  EXPECT_FALSE(bank.can_access(100 + cfg.tRCD - 1, 5));
  EXPECT_TRUE(bank.can_access(100 + cfg.tRCD, 5));
}

TEST(Bank, WrongRowIsNotAccessible) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(0, 5);
  EXPECT_FALSE(bank.can_access(1000, 6));
}

TEST(Bank, RespectsTrasBeforePrecharge) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(0, 1);
  EXPECT_FALSE(bank.can_precharge(cfg.tRAS - 1));
  EXPECT_TRUE(bank.can_precharge(cfg.tRAS));
}

TEST(Bank, RespectsTrpAfterPrecharge) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(0, 1);
  bank.precharge(cfg.tRAS);
  EXPECT_FALSE(bank.can_activate(cfg.tRAS + cfg.tRP - 1));
  EXPECT_TRUE(bank.can_activate(cfg.tRAS + cfg.tRP));
}

TEST(Bank, AccessReturnsDataStartAfterCas) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(0, 1);
  const Cycle burst_start = bank.access(cfg.tRCD);
  EXPECT_EQ(burst_start, cfg.tRCD + cfg.tCAS);
  EXPECT_EQ(bank.accesses(), 1u);
}

TEST(Bank, BackToBackAccessesGapByBurst) {
  const DramConfig cfg;
  Bank bank(cfg);
  bank.activate(0, 1);
  bank.access(cfg.tRCD);
  EXPECT_FALSE(bank.can_access(cfg.tRCD + 1, 1));
  EXPECT_TRUE(bank.can_access(cfg.tRCD + cfg.burst_cycles(), 1));
}

// ---------- Address mapping ----------

TEST(MemorySystem, DecodeInterleavesChannelsFirst) {
  MemorySystem mem(small_config());
  EXPECT_EQ(mem.decode(0).channel, 0u);
  EXPECT_EQ(mem.decode(1).channel, 1u);
  EXPECT_EQ(mem.decode(2).channel, 0u);
}

TEST(MemorySystem, DecodeIsInjectiveOverAWindow) {
  const DramConfig cfg;  // full 24-channel config
  MemorySystem mem(cfg);
  // Two distinct block addresses must never collide in (channel,bank,row)
  // AND column; we check (channel,bank,row) tuples repeat only after a full
  // row of blocks.
  const auto a = mem.decode(0);
  const auto b = mem.decode(cfg.channels);  // next block in same channel
  EXPECT_EQ(a.channel, b.channel);
  EXPECT_EQ(a.row, b.row);  // same row until blocks_per_row exhausted
  const auto c = mem.decode(cfg.channels * cfg.blocks_per_row());
  EXPECT_EQ(c.channel, a.channel);
  EXPECT_NE(c.bank, a.bank);  // row boundary advances the bank
}

// ---------- End-to-end transfers ----------

TEST(MemorySystem, CompletesAllRequests) {
  MemorySystem mem(small_config());
  const int kRequests = 100;
  int issued = 0;
  while (mem.completed_requests() < kRequests) {
    if (issued < kRequests && mem.enqueue(issued, false)) ++issued;
    mem.tick();
    ASSERT_LT(mem.now(), 100000u) << "simulation did not converge";
  }
  EXPECT_TRUE(mem.idle());
  EXPECT_EQ(mem.bytes_transferred(), kRequests * 64u);
}

TEST(MemorySystem, BackpressureWhenQueueFull) {
  DramConfig cfg = small_config();
  cfg.queue_depth = 2;
  MemorySystem mem(cfg);
  // Same channel (stride = channels) to fill one queue.
  EXPECT_TRUE(mem.enqueue(0, false));
  EXPECT_TRUE(mem.enqueue(2, false));
  EXPECT_FALSE(mem.enqueue(4, false));
}

TEST(MemorySystem, StreamingRowHitRateIsHigh) {
  BandwidthProbe probe;  // default Table IV config
  const auto r = probe.measure(AccessPattern::kStreaming, 20000);
  EXPECT_GT(r.row_hit_rate, 0.85);
  EXPECT_GT(r.utilization, 0.9);
}

TEST(MemorySystem, RandomPatternSlowerThanStreaming) {
  BandwidthProbe probe;
  const auto stream = probe.measure(AccessPattern::kStreaming, 20000);
  const auto random = probe.measure(AccessPattern::kRandom, 20000);
  EXPECT_LT(random.bandwidth_bytes_per_sec, stream.bandwidth_bytes_per_sec);
  EXPECT_LT(random.row_hit_rate, stream.row_hit_rate);
}

TEST(MemorySystem, SustainedStreamingNear400GBs) {
  // The paper's Table IV configuration sustains ~400 GB/s.
  BandwidthProbe probe;
  const auto r = probe.measure(AccessPattern::kStreaming, 30000);
  EXPECT_GT(r.bandwidth_bytes_per_sec, 380e9);
  EXPECT_LT(r.bandwidth_bytes_per_sec, 404e9);
}

TEST(BandwidthProbe, CalibrationOrdersPatterns) {
  BandwidthProbe probe;
  const auto profile = probe.calibrate(20000);
  EXPECT_GT(profile.streaming, profile.random);
  EXPECT_GE(profile.peak, profile.streaming);
  EXPECT_GT(profile.strided_gather, 0.0);
}

TEST(BandwidthProbe, ProfileForPatternDispatch) {
  BandwidthProfile p{100.0, 50.0, 25.0, 120.0};
  EXPECT_EQ(p.for_pattern(AccessPattern::kStreaming), 100.0);
  EXPECT_EQ(p.for_pattern(AccessPattern::kStridedGather), 50.0);
  EXPECT_EQ(p.for_pattern(AccessPattern::kRandom), 25.0);
}

// Parameterized sweep: every channel count still completes traffic and
// bandwidth grows with channels.
class ChannelSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ChannelSweep, BandwidthScalesWithChannels) {
  DramConfig cfg;
  cfg.channels = GetParam();
  BandwidthProbe probe(cfg);
  const auto r = probe.measure(AccessPattern::kStreaming, 10000);
  // Near-peak utilization regardless of channel count.
  EXPECT_GT(r.utilization, 0.85);
  EXPECT_NEAR(r.bandwidth_bytes_per_sec,
              cfg.peak_bandwidth_bytes_per_sec() * r.utilization, 1e9);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(1u, 2u, 4u, 8u, 12u, 24u));

}  // namespace
}  // namespace booster::memsim
