#include "gbdt/loss.h"

#include <gtest/gtest.h>

#include <cmath>

namespace booster::gbdt {
namespace {

/// Central-difference check: g must match dl/dpred and h must match
/// d2l/dpred2 for every loss -- the property GB training relies on.
void check_gradients_numerically(const Loss& loss, float pred, float y) {
  // kEps must stay well above float's resolution at |pred| (the Loss
  // interface takes float predictions); 0.05 keeps the float rounding error
  // negligible while the O(eps^2) truncation stays within tolerance.
  constexpr float kEps = 0.05f;
  const auto gp = loss.gradients(pred, y);
  const double l_plus = loss.value(pred + kEps, y);
  const double l_minus = loss.value(pred - kEps, y);
  const double l_mid = loss.value(pred, y);
  const double g_num = (l_plus - l_minus) / (2.0 * kEps);
  const double h_num = (l_plus - 2 * l_mid + l_minus) / (double{kEps} * kEps);
  EXPECT_NEAR(gp.g, g_num, 5e-3) << "first-order gradient mismatch";
  EXPECT_NEAR(gp.h, std::max(h_num, 1e-16), 1e-2)
      << "second-order gradient mismatch";
}

class LossGradientSweep
    : public ::testing::TestWithParam<std::tuple<std::string, float, float>> {};

TEST_P(LossGradientSweep, MatchesNumericalDifferentiation) {
  const auto& [name, pred, y] = GetParam();
  const auto loss = make_loss(name);
  check_gradients_numerically(*loss, pred, y);
}

INSTANTIATE_TEST_SUITE_P(
    AllLosses, LossGradientSweep,
    ::testing::Combine(::testing::Values("squared", "logistic", "ranking"),
                       ::testing::Values(-2.0f, -0.5f, 0.0f, 0.7f, 3.0f),
                       ::testing::Values(0.0f, 1.0f, 2.0f)));

TEST(SquaredLoss, GradientsAreResidualAndUnitHessian) {
  SquaredLoss loss;
  const auto gp = loss.gradients(3.0f, 1.0f);
  EXPECT_FLOAT_EQ(gp.g, 2.0f);
  EXPECT_FLOAT_EQ(gp.h, 1.0f);
}

TEST(SquaredLoss, ZeroAtPerfectPrediction) {
  SquaredLoss loss;
  EXPECT_DOUBLE_EQ(loss.value(1.5f, 1.5f), 0.0);
}

TEST(LogisticLoss, GradientIsProbabilityMinusLabel) {
  LogisticLoss loss;
  const auto gp = loss.gradients(0.0f, 1.0f);
  EXPECT_NEAR(gp.g, 0.5 - 1.0, 1e-6);
  EXPECT_NEAR(gp.h, 0.25, 1e-6);
}

TEST(LogisticLoss, TransformIsSigmoid) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.transform(0.0), 0.5, 1e-12);
  EXPECT_GT(loss.transform(10.0), 0.999);
  EXPECT_LT(loss.transform(-10.0), 0.001);
}

TEST(LogisticLoss, BaseScoreIsLogitOfPositiveRate) {
  LogisticLoss loss;
  EXPECT_NEAR(loss.transform(loss.base_score(0.25)), 0.25, 1e-9);
  EXPECT_NEAR(loss.base_score(0.5), 0.0, 1e-9);
}

TEST(LogisticLoss, HessianNeverZero) {
  LogisticLoss loss;
  const auto gp = loss.gradients(100.0f, 1.0f);  // saturated sigmoid
  EXPECT_GT(gp.h, 0.0f);
}

TEST(RankingLoss, PointwiseOnGradedLabels) {
  RankingLoss loss;
  const auto gp = loss.gradients(1.0f, 2.0f);
  EXPECT_FLOAT_EQ(gp.g, -1.0f);
  EXPECT_FLOAT_EQ(gp.h, 1.0f);
}

TEST(MakeLoss, FactoryNames) {
  EXPECT_EQ(make_loss("squared")->name(), "squared");
  EXPECT_EQ(make_loss("logistic")->name(), "logistic");
  EXPECT_EQ(make_loss("ranking")->name(), "ranking-pointwise");
}

TEST(Losses, ConvexityAlongPrediction) {
  // value() must be convex in pred: midpoint below chord.
  for (const char* name : {"squared", "logistic", "ranking"}) {
    const auto loss = make_loss(name);
    for (const float y : {0.0f, 1.0f}) {
      const double a = loss->value(-1.0f, y);
      const double b = loss->value(3.0f, y);
      const double mid = loss->value(1.0f, y);
      EXPECT_LE(mid, 0.5 * (a + b) + 1e-9) << name;
    }
  }
}

}  // namespace
}  // namespace booster::gbdt
