#include "util/stats.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace booster::util {
namespace {

TEST(Mean, EmptyIsZero) { EXPECT_EQ(mean({}), 0.0); }

TEST(Mean, SimpleAverage) {
  const std::array<double, 4> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
}

TEST(Geomean, MatchesHandComputation) {
  const std::array<double, 2> xs{4.0, 9.0};
  EXPECT_DOUBLE_EQ(geomean(xs), 6.0);
}

TEST(Geomean, SingleElement) {
  const std::array<double, 1> xs{11.4};
  EXPECT_DOUBLE_EQ(geomean(xs), 11.4);
}

TEST(Geomean, InvariantUnderReciprocalPairs) {
  const std::array<double, 2> xs{8.0, 1.0 / 8.0};
  EXPECT_NEAR(geomean(xs), 1.0, 1e-12);
}

TEST(Variance, KnownValue) {
  const std::array<double, 3> xs{2.0, 4.0, 6.0};
  EXPECT_DOUBLE_EQ(variance(xs), 4.0);  // sample variance, n-1
}

TEST(Variance, FewerThanTwoIsZero) {
  const std::array<double, 1> xs{5.0};
  EXPECT_EQ(variance(xs), 0.0);
  EXPECT_EQ(variance({}), 0.0);
}

TEST(Percentile, EndpointsAndMedian) {
  const std::array<double, 5> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 3.0);
}

TEST(Percentile, Interpolates) {
  const std::array<double, 2> xs{0.0, 10.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 2.5);
}

TEST(Accumulator, TracksMinMaxMeanCount) {
  Accumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_EQ(acc.mean(), 0.0);
  acc.add(3.0);
  acc.add(-1.0);
  acc.add(4.0);
  EXPECT_EQ(acc.count(), 3u);
  EXPECT_DOUBLE_EQ(acc.min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.max(), 4.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.sum(), 6.0);
}

TEST(Accumulator, SingleValue) {
  Accumulator acc;
  acc.add(7.0);
  EXPECT_DOUBLE_EQ(acc.min(), 7.0);
  EXPECT_DOUBLE_EQ(acc.max(), 7.0);
  EXPECT_DOUBLE_EQ(acc.mean(), 7.0);
}

}  // namespace
}  // namespace booster::util
