// Closed-loop cycle co-simulation vs the analytic model: rate matching
// must *emerge* from the DRAM/BU interaction, validating the paper's
// sizing argument (§III-B) and the analytic max(memory, compute) costing.
#include "core/cycle_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "workloads/synth.h"

namespace booster::core {
namespace {

gbdt::BinnedDataset make_data(std::uint32_t fields, std::uint64_t n,
                              std::uint64_t seed = 3) {
  workloads::DatasetSpec spec;
  spec.name = "cycle";
  spec.nominal_records = n;
  spec.numeric_fields = fields;
  spec.loss = "squared";
  return gbdt::Binner().bin(workloads::synthesize(spec, n, seed));
}

std::vector<std::uint32_t> all_rows(std::uint64_t n) {
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(CycleSim, CompletesAndMovesExpectedBytes) {
  const auto data = make_data(28, 20000);
  const auto rows = all_rows(20000);
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run_step1(data, rows);
  EXPECT_GT(r.mem_cycles, 0u);
  // Records: 28 B tightly packed -> 20000*28/64 = 8750 blocks; gradients:
  // 20000*8/64 = 2500 blocks.
  const double expected_blocks = 20000.0 * 28.0 / 64.0 + 2500.0;
  EXPECT_NEAR(static_cast<double>(r.dram_bytes) / 64.0, expected_blocks,
              expected_blocks * 0.08);
}

TEST(CycleSim, ReportsBothClockDomains) {
  // 64-field records at full scale: memory-bound, so the memory clock sets
  // the wall time and the accelerator clock only changes how many of *its*
  // cycles that time covers.
  const auto data = make_data(64, 16000);
  BoosterConfig cfg;
  memsim::DramConfig dram;
  const CycleSim sim{cfg, dram};
  EXPECT_NEAR(sim.clock_ratio(), 1.0e9 / 1.05e9, 1e-12);
  const auto r = sim.run_step1(data, all_rows(16000));
  EXPECT_DOUBLE_EQ(r.accel_clock_hz, cfg.clock_hz);
  EXPECT_DOUBLE_EQ(r.mem_clock_hz, dram.clock_hz);
  // The accelerator clock is 1 GHz vs the 1.05 GHz memory clock, so the
  // same wall time covers ~4.8% fewer accelerator cycles.
  EXPECT_NEAR(static_cast<double>(r.accel_cycles),
              static_cast<double>(r.mem_cycles) * sim.clock_ratio(), 1.0);
  EXPECT_NEAR(r.seconds,
              static_cast<double>(r.mem_cycles) / dram.clock_hz, 1e-12);
  // A faster memory clock at the same topology finishes the memory-bound
  // run in less wall time -- but only until the BU array becomes the
  // bottleneck (the design is rate-matched, so 2x memory flips the run
  // compute-bound). A compute-bound run (tiny array) does not care at all.
  memsim::DramConfig fast = dram;
  fast.clock_hz = 2.1e9;
  const auto r2 = CycleSim{cfg, fast}.run_step1(data, all_rows(16000));
  EXPECT_LT(r2.seconds, r.seconds);
  EXPECT_GT(r2.compute_bound_fraction, r.compute_bound_fraction);
  BoosterConfig tiny;
  tiny.clusters = 2;
  const auto c1 = CycleSim{tiny, dram}.run_step1(data, all_rows(16000));
  const auto c2 = CycleSim{tiny, fast}.run_step1(data, all_rows(16000));
  EXPECT_NEAR(c2.seconds, c1.seconds, c1.seconds * 0.02);
}

TEST(CycleSim, FullScaleBoosterIsMemoryBound) {
  // 3200 BUs on a 64-field record -- the paper's worked example (SS III-B):
  // 6.25 blocks/cycle x 64 fields x 8 cycles = 3200 BUs. The run must be
  // memory-bound with high DRAM utilization.
  const auto data = make_data(64, 30000);
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run_step1(data, all_rows(30000));
  EXPECT_LT(r.compute_bound_fraction, 0.5);
  EXPECT_GT(r.achieved_bandwidth,
            0.6 * memsim::DramConfig{}.peak_bandwidth_bytes_per_sec());
}

TEST(CycleSim, TinyArrayGoesComputeBound) {
  // 2 clusters (128 BUs): the array cannot keep up with the record stream.
  const auto data = make_data(28, 30000);
  BoosterConfig small;
  small.clusters = 2;
  const CycleSim sim{small, memsim::DramConfig{}};
  const auto r = sim.run_step1(data, all_rows(30000));
  EXPECT_GT(r.compute_bound_fraction, 0.5);
  // Throughput collapses to the BU service rate: copies/(8 cycles), in
  // accelerator cycles.
  EXPECT_NEAR(r.records_per_cycle, 2.0 / 8.0, 0.05);
}

TEST(CycleSim, BackpressureStatsExposeTheBottleneck) {
  const auto data = make_data(64, 24000);
  const auto rows = all_rows(24000);
  // Memory-bound at full scale: channel queues run hot, so the front-end
  // sees enqueue rejections and substantial queue occupancy.
  const auto mem_bound =
      CycleSim{BoosterConfig{}, memsim::DramConfig{}}.run_step1(data, rows);
  EXPECT_GT(mem_bound.enqueue_rejections, 0u);
  EXPECT_GT(mem_bound.avg_queue_occupancy, 0.5);
  EXPECT_GT(mem_bound.row_hit_rate, 0.8);  // streaming fetch
  // Compute-bound tiny array: the double buffer throttles issue long before
  // the queues fill, so occupancy collapses.
  BoosterConfig tiny;
  tiny.clusters = 2;
  const auto cpu_bound =
      CycleSim{tiny, memsim::DramConfig{}}.run_step1(data, rows);
  EXPECT_LT(cpu_bound.avg_queue_occupancy, mem_bound.avg_queue_occupancy);
  EXPECT_LT(cpu_bound.queue_full_fraction, 0.05);
}

TEST(CycleSim, ThroughputMatchesAnalyticModelWithinTolerance) {
  // The analytic BoosterModel charges max(memory, compute) for step 1; the
  // cycle-coupled run must land within ~25% for both regimes.
  const auto data = make_data(64, 24000);
  const auto rows = all_rows(24000);
  for (const std::uint32_t clusters : {4u, 50u}) {
    BoosterConfig cfg;
    cfg.clusters = clusters;
    const CycleSim sim{cfg, memsim::DramConfig{}};
    const auto r = sim.run_step1(data, rows);

    // Analytic: memory time (records + gradient bytes at streaming rate
    // ~peak) vs compute time (records * 8 / copies).
    const double mem_cycles =
        (24000.0 * (64.0 + 8.0)) / (24.0 * 16.0);  // bytes / bus-bytes-per-cy
    const double copies = clusters;                 // 64 fields = 1 cluster
    const double comp_cycles = 24000.0 * 8.0 / copies;
    const double analytic = std::max(mem_cycles, comp_cycles);
    EXPECT_NEAR(static_cast<double>(r.mem_cycles), analytic, analytic * 0.25)
        << clusters << " clusters";
  }
}

TEST(CycleSim, RateMatchingKneeNearPaperDesign) {
  // Sweeping the array size, the crossover from compute-bound to
  // memory-bound must bracket the paper's 50-cluster / 3200-BU design for
  // 64-field records (the worked example of SS III-B): compute-bound well
  // below it, memory-bound just above it, with compute_bound_fraction
  // crossing ~0.5 in between.
  const auto data = make_data(64, 16000);
  const auto rows = all_rows(16000);
  auto fraction_at = [&](std::uint32_t clusters) {
    BoosterConfig cfg;
    cfg.clusters = clusters;
    return CycleSim{cfg, memsim::DramConfig{}}
        .run_step1(data, rows)
        .compute_bound_fraction;
  };
  EXPECT_GT(fraction_at(10), 0.5);   // 640 BUs: deeply compute-bound
  EXPECT_GT(fraction_at(35), 0.5);   // 2240 BUs: still compute-bound
  EXPECT_LT(fraction_at(55), 0.5);   // 3520 BUs: memory-bound
  EXPECT_LT(fraction_at(100), 0.2);  // 6400 BUs: deeply memory-bound
}

TEST(CycleSim, SerializationSlowsNaiveMappingOnCategoricalData) {
  workloads::DatasetSpec spec;
  spec.name = "cycle-cat";
  spec.nominal_records = 16000;
  spec.numeric_fields = 1;
  spec.categorical_cardinalities = {40, 40, 40, 40};
  spec.loss = "squared";
  spec.label_structure = workloads::LabelStructure::kCategorical;
  const auto data =
      gbdt::Binner().bin(workloads::synthesize(spec, 16000, 5));
  const auto rows = all_rows(16000);
  BoosterConfig grouped;
  grouped.clusters = 2;  // force the compute-bound regime
  BoosterConfig naive = grouped;
  naive.group_by_field_mapping = false;
  const auto g = CycleSim{grouped, memsim::DramConfig{}}.run_step1(data, rows);
  const auto n = CycleSim{naive, memsim::DramConfig{}}.run_step1(data, rows);
  EXPECT_GT(n.mem_cycles, g.mem_cycles);
}

TEST(CycleSim, EmptyRowsAreFree) {
  const auto data = make_data(8, 100);
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run_step1(data, {});
  EXPECT_EQ(r.mem_cycles, 0u);
}

// --- Generic step replay (the StepRequest front-end). -----------------

StepRequest histogram_request(double records, std::uint32_t record_bytes,
                              double density) {
  StepRequest req;
  req.kind = trace::StepKind::kHistogram;
  req.records = records;
  req.record_bytes = record_bytes;
  req.density = density;
  req.bins_per_field.assign(record_bytes, 256);  // one byte per field
  return req;
}

TEST(CycleSimReplay, DenseHistogramMatchesRowListPath) {
  // The generic front-end and the exact row-list path must agree on a
  // dense full-scan: same streams, same service rate.
  const std::uint64_t n = 24000;
  const auto data = make_data(64, n);
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto exact = sim.run_step1(data, all_rows(n));
  const auto replay = sim.run(
      histogram_request(static_cast<double>(n),
                        data.layout().record_bytes, 1.0));
  EXPECT_NEAR(static_cast<double>(replay.mem_cycles),
              static_cast<double>(exact.mem_cycles),
              0.15 * static_cast<double>(exact.mem_cycles));
}

TEST(CycleSimReplay, SparseGatherDecaysRowHitsAndBandwidth) {
  // Deep-node histogram fetch at 1% density: the record gather strides
  // ~50 blocks apart across the full region, so row hits collapse and
  // achieved bandwidth decays toward the tFAW-bounded activate rate (~2/3
  // of peak -- FR-FCFS keeps even row-miss-heavy gathers well fed). This
  // is the closed-loop effect the open-loop analytic model approximates
  // with perf::effective_bandwidth().
  BoosterConfig wide;  // oversize the array so both runs are memory-bound
  wide.clusters = 200;
  const CycleSim sim{wide, memsim::DramConfig{}};
  auto dense_req = histogram_request(30000, 28, 1.0);
  auto sparse_req = histogram_request(30000, 28, 0.01);
  sparse_req.depth = 5;            // deep node: pointer stream included
  dense_req.include_fill = false;  // steady-state bandwidth comparison
  sparse_req.include_fill = false;
  const auto dense = sim.run(dense_req);
  const auto sparse = sim.run(sparse_req);
  EXPECT_LT(sparse.row_hit_rate, 0.5 * dense.row_hit_rate);
  EXPECT_LT(sparse.achieved_bandwidth, 0.85 * dense.achieved_bandwidth);
  EXPECT_GT(sparse.achieved_bandwidth,
            0.5 * memsim::DramConfig{}.peak_bandwidth_bytes_per_sec());
}

TEST(CycleSimReplay, PartitionAndTraversalComplete) {
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  StepRequest part;
  part.kind = trace::StepKind::kPartition;
  part.records = 20000;
  part.record_bytes = 28;
  part.density = 0.5;
  part.include_fill = false;  // short event; fill is charged separately
  const auto p = sim.run(part);
  EXPECT_GT(p.mem_cycles, 0u);
  // Column format: ~1 B column + 8 B pointers per record.
  EXPECT_NEAR(static_cast<double>(p.dram_bytes), 20000.0 * 9.0,
              20000.0 * 9.0 * 0.25);
  // 3200 predicate evaluations per cycle: partition is always memory-bound.
  EXPECT_LT(p.compute_bound_fraction, 0.1);

  StepRequest trav;
  trav.kind = trace::StepKind::kTraversal;
  trav.records = 20000;
  trav.record_bytes = 28;
  trav.fields_touched = 12;
  trav.avg_path_length = 6.0;
  const auto t = sim.run(trav);
  EXPECT_GT(t.mem_cycles, 0u);
  // 12 column bytes + 16 B of g/h read+write per record.
  EXPECT_NEAR(static_cast<double>(t.dram_bytes), 20000.0 * 28.0,
              20000.0 * 28.0 * 0.2);
}

TEST(CycleSimReplay, SplitSelectIsHostSideAndFree) {
  const CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  StepRequest req;
  req.kind = trace::StepKind::kSplitSelect;
  req.records = 1000;
  const auto r = sim.run(req);
  EXPECT_EQ(r.mem_cycles, 0u);
}

}  // namespace
}  // namespace booster::core
