// Cycle-coupled step-1 simulation vs the analytic model: rate matching
// must *emerge* from the DRAM/BU interaction, validating the paper's
// sizing argument and the analytic max(memory, compute) costing.
#include "core/cycle_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "workloads/synth.h"

namespace booster::core {
namespace {

gbdt::BinnedDataset make_data(std::uint32_t fields, std::uint64_t n,
                              std::uint64_t seed = 3) {
  workloads::DatasetSpec spec;
  spec.name = "cycle";
  spec.nominal_records = n;
  spec.numeric_fields = fields;
  spec.loss = "squared";
  return gbdt::Binner().bin(workloads::synthesize(spec, n, seed));
}

std::vector<std::uint32_t> all_rows(std::uint64_t n) {
  std::vector<std::uint32_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(CycleSim, CompletesAndMovesExpectedBytes) {
  const auto data = make_data(28, 20000);
  const auto rows = all_rows(20000);
  const Step1CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run(data, rows);
  EXPECT_GT(r.cycles, 0u);
  // Records: 28 B tightly packed -> 20000*28/64 = 8750 blocks; gradients:
  // 20000*8/64 = 2500 blocks.
  const double expected_blocks = 20000.0 * 28.0 / 64.0 + 2500.0;
  EXPECT_NEAR(static_cast<double>(r.dram_bytes) / 64.0, expected_blocks,
              expected_blocks * 0.08);
}

TEST(CycleSim, FullScaleBoosterIsMemoryBound) {
  // 3200 BUs on a 64-field record -- the paper's worked example (SS III-B):
  // 6.25 blocks/cycle x 64 fields x 8 cycles = 3200 BUs. The run must be
  // memory-bound with high DRAM utilization.
  const auto data = make_data(64, 30000);
  const Step1CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run(data, all_rows(30000));
  EXPECT_LT(r.compute_bound_fraction, 0.5);
  EXPECT_GT(r.achieved_bandwidth,
            0.6 * memsim::DramConfig{}.peak_bandwidth_bytes_per_sec());
}

TEST(CycleSim, TinyArrayGoesComputeBound) {
  // 2 clusters (128 BUs): the array cannot keep up with the record stream.
  const auto data = make_data(28, 30000);
  BoosterConfig small;
  small.clusters = 2;
  const Step1CycleSim sim{small, memsim::DramConfig{}};
  const auto r = sim.run(data, all_rows(30000));
  EXPECT_GT(r.compute_bound_fraction, 0.5);
  // Throughput collapses to the BU service rate: copies/(8 cycles).
  EXPECT_NEAR(r.records_per_cycle, 2.0 / 8.0, 0.05);
}

TEST(CycleSim, ThroughputMatchesAnalyticModelWithinTolerance) {
  // The analytic BoosterModel charges max(memory, compute) for step 1; the
  // cycle-coupled run must land within ~25% for both regimes.
  const auto data = make_data(64, 24000);
  const auto rows = all_rows(24000);
  for (const std::uint32_t clusters : {4u, 50u}) {
    BoosterConfig cfg;
    cfg.clusters = clusters;
    const Step1CycleSim sim{cfg, memsim::DramConfig{}};
    const auto r = sim.run(data, rows);

    // Analytic: memory time (records + gradient bytes at streaming rate
    // ~peak) vs compute time (records * 8 / copies).
    const double mem_cycles =
        (24000.0 * (64.0 + 8.0)) / (24.0 * 16.0);  // bytes / bus-bytes-per-cy
    const double copies = clusters;                 // 64 fields = 1 cluster
    const double comp_cycles = 24000.0 * 8.0 / copies;
    const double analytic = std::max(mem_cycles, comp_cycles);
    EXPECT_NEAR(static_cast<double>(r.cycles), analytic, analytic * 0.25)
        << clusters << " clusters";
  }
}

TEST(CycleSim, RateMatchingKneeNearPaperDesign) {
  // Sweeping the array size, the crossover from compute-bound to
  // memory-bound must bracket the paper's 50-cluster design for 64-field
  // records (the worked example of SS III-B).
  const auto data = make_data(64, 16000);
  const auto rows = all_rows(16000);
  double small_fraction = 0.0;
  double large_fraction = 0.0;
  {
    BoosterConfig cfg;
    cfg.clusters = 10;
    small_fraction =
        Step1CycleSim{cfg, memsim::DramConfig{}}.run(data, rows).compute_bound_fraction;
  }
  {
    BoosterConfig cfg;
    cfg.clusters = 100;
    large_fraction =
        Step1CycleSim{cfg, memsim::DramConfig{}}.run(data, rows).compute_bound_fraction;
  }
  EXPECT_GT(small_fraction, 0.5);  // 640 BUs: compute-bound
  EXPECT_LT(large_fraction, 0.2);  // 6400 BUs: memory-bound
}

TEST(CycleSim, SerializationSlowsNaiveMappingOnCategoricalData) {
  workloads::DatasetSpec spec;
  spec.name = "cycle-cat";
  spec.nominal_records = 16000;
  spec.numeric_fields = 1;
  spec.categorical_cardinalities = {40, 40, 40, 40};
  spec.loss = "squared";
  spec.label_structure = workloads::LabelStructure::kCategorical;
  const auto data =
      gbdt::Binner().bin(workloads::synthesize(spec, 16000, 5));
  const auto rows = all_rows(16000);
  BoosterConfig grouped;
  grouped.clusters = 2;  // force the compute-bound regime
  BoosterConfig naive = grouped;
  naive.group_by_field_mapping = false;
  const auto g = Step1CycleSim{grouped, memsim::DramConfig{}}.run(data, rows);
  const auto n = Step1CycleSim{naive, memsim::DramConfig{}}.run(data, rows);
  EXPECT_GT(n.cycles, g.cycles);
}

TEST(CycleSim, EmptyRowsAreFree) {
  const auto data = make_data(8, 100);
  const Step1CycleSim sim{BoosterConfig{}, memsim::DramConfig{}};
  const auto r = sim.run(data, {});
  EXPECT_EQ(r.cycles, 0u);
}

}  // namespace
}  // namespace booster::core
