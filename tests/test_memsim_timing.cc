// Focused DRAM timing-protocol tests: activation-rate limits (tRRD/tFAW),
// back-pressure under conflict-heavy traffic, and cross-config monotonicity
// sweeps. Complements test_memsim.cc's per-bank and end-to-end coverage.
#include <gtest/gtest.h>

#include "memsim/bandwidth_probe.h"
#include "memsim/memory_system.h"
#include "memsim/trace_player.h"

namespace booster::memsim {
namespace {

TEST(ActivationLimits, FawThrottlesRowMissStreams) {
  // Same-channel, all-distinct-row traffic: every access needs an ACT, so
  // throughput is bounded by 4 activates per tFAW window.
  DramConfig cfg;
  cfg.channels = 1;
  const MemorySystem probe_decode(cfg);
  std::vector<TraceEntry> trace;
  const std::uint64_t blocks_per_bank_row =
      cfg.blocks_per_row() * cfg.banks_per_channel;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    // Stride a whole bank-row group so every request opens a new row.
    trace.push_back({i * blocks_per_bank_row, false});
  }
  const TracePlayer player(cfg);
  const auto result = player.replay(trace);
  // <= 4 blocks per tFAW cycles (plus pipeline slack).
  const double blocks_per_cycle =
      static_cast<double>(trace.size()) / static_cast<double>(result.cycles);
  EXPECT_LE(blocks_per_cycle, 4.0 / cfg.tFAW + 0.02);
  EXPECT_EQ(result.row_hit_rate, 0.0);
}

TEST(ActivationLimits, RowHitsBypassActThrottle) {
  DramConfig cfg;
  cfg.channels = 1;
  const TracePlayer player(cfg);
  const auto result = player.replay(TracePlayer::sequential_read(2000));
  // Streaming within rows: far faster than the ACT-bound pattern.
  const double blocks_per_cycle =
      static_cast<double>(2000) / static_cast<double>(result.cycles);
  EXPECT_GT(blocks_per_cycle, 4.0 / cfg.tFAW * 1.3);
  EXPECT_GT(result.row_hit_rate, 0.9);
}

TEST(Timing, SlowerTimingsReduceBandwidth) {
  DramConfig fast;
  DramConfig slow = fast;
  slow.tCAS = slow.tRP = slow.tRCD = 24;
  slow.tRAS = 56;
  const auto fast_bw = BandwidthProbe(fast)
                           .measure(AccessPattern::kRandom, 10000)
                           .bandwidth_bytes_per_sec;
  const auto slow_bw = BandwidthProbe(slow)
                           .measure(AccessPattern::kRandom, 10000)
                           .bandwidth_bytes_per_sec;
  EXPECT_LT(slow_bw, fast_bw);
}

TEST(Timing, StreamingInsensitiveToRowTimings) {
  // Open-page streaming pays tRCD/tRP rarely; bandwidth should barely move.
  DramConfig fast;
  DramConfig slow = fast;
  slow.tRP = 24;
  slow.tRCD = 24;
  const auto fast_bw = BandwidthProbe(fast)
                           .measure(AccessPattern::kStreaming, 20000)
                           .bandwidth_bytes_per_sec;
  const auto slow_bw = BandwidthProbe(slow)
                           .measure(AccessPattern::kStreaming, 20000)
                           .bandwidth_bytes_per_sec;
  EXPECT_GT(slow_bw, fast_bw * 0.95);
}

TEST(QueueDepth, DeeperQueuesNeverHurtRandomTraffic) {
  DramConfig shallow;
  shallow.queue_depth = 4;
  DramConfig deep;
  deep.queue_depth = 64;
  const auto a = BandwidthProbe(shallow)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  const auto b = BandwidthProbe(deep)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  EXPECT_GE(b, a * 0.98);  // FR-FCFS benefits from a wider window
}

TEST(Banks, MoreBanksHelpConflictTraffic) {
  DramConfig few;
  few.banks_per_channel = 2;
  DramConfig many;
  many.banks_per_channel = 16;
  const auto a = BandwidthProbe(few)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  const auto b = BandwidthProbe(many)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  EXPECT_GT(b, a);
}

TEST(Backpressure, EnqueueRejectsWhenQueueFullAndRetrySucceeds) {
  // A single channel with a 4-deep queue: the fifth enqueue before any tick
  // must be refused (and counted), and the caller's retry-next-cycle loop
  // must still deliver every request.
  DramConfig cfg;
  cfg.channels = 1;
  cfg.queue_depth = 4;
  MemorySystem mem(cfg);
  std::uint64_t accepted = 0;
  while (mem.enqueue(accepted, /*is_write=*/false)) ++accepted;
  EXPECT_EQ(accepted, 4u);
  EXPECT_EQ(mem.enqueue_rejections(), 1u);
  EXPECT_EQ(mem.pending_requests(), 4u);

  // Retry loop: one attempt per cycle, cursor held on rejection.
  const std::uint64_t target = 64;
  std::uint64_t issued = accepted;
  while (issued < target) {
    if (mem.enqueue(issued, false)) ++issued;
    mem.tick();
  }
  while (!mem.idle()) mem.tick();
  EXPECT_EQ(mem.completed_requests(), target);
  EXPECT_EQ(mem.pending_requests(), 0u);
  EXPECT_GT(mem.enqueue_rejections(), 1u);  // the stream kept the queue hot
  EXPECT_EQ(mem.bytes_transferred(), target * cfg.block_bytes);
}

TEST(Backpressure, OccupancyStatsAreMonotoneAndBounded) {
  // Saturating stream on one channel: the occupancy integral must be
  // non-decreasing tick over tick, the mean occupancy can never exceed the
  // queue depth, and full-queue cycles can never exceed elapsed cycles.
  DramConfig cfg;
  cfg.channels = 1;
  MemorySystem mem(cfg);
  std::uint64_t issued = 0;
  double last_integral = 0.0;
  for (int t = 0; t < 2000; ++t) {
    for (int b = 0; b < 4; ++b) {
      if (mem.enqueue(issued, false)) ++issued;
    }
    mem.tick();
    const double integral =
        mem.avg_queue_occupancy() * static_cast<double>(mem.now());
    EXPECT_GE(integral, last_integral - 1e-9);
    last_integral = integral;
  }
  EXPECT_LE(mem.avg_queue_occupancy(), static_cast<double>(cfg.queue_depth));
  EXPECT_GT(mem.avg_queue_occupancy(), 1.0);  // saturating stream runs hot
  EXPECT_LE(mem.queue_full_channel_cycles(), mem.now());
  EXPECT_GT(mem.queue_full_channel_cycles(), 0u);
}

TEST(Backpressure, IdleDrainsBurstyArrivals) {
  // Bursts of row-conflict traffic separated by dead cycles: whatever the
  // arrival shape, after the last burst the system must drain to idle with
  // every request completed and every byte accounted.
  DramConfig cfg;
  cfg.queue_depth = 8;
  MemorySystem mem(cfg);
  const std::uint64_t blocks_per_bank_row =
      cfg.blocks_per_row() * cfg.banks_per_channel;
  std::uint64_t issued = 0;
  std::uint64_t rejected_retries = 0;
  for (int burst = 0; burst < 20; ++burst) {
    std::uint64_t want = 96;  // larger than one channel's queue
    while (want > 0) {
      // All-distinct-row addresses on a few channels: conflict-heavy.
      const std::uint64_t addr = (issued % 3) + issued * blocks_per_bank_row;
      if (mem.enqueue(addr, issued % 4 == 0)) {
        ++issued;
        --want;
      } else {
        ++rejected_retries;
      }
      mem.tick();
    }
    for (int gap = 0; gap < 50; ++gap) mem.tick();
  }
  while (!mem.idle()) mem.tick();
  EXPECT_EQ(mem.completed_requests(), issued);
  EXPECT_EQ(mem.pending_requests(), 0u);
  EXPECT_EQ(mem.bytes_transferred(), issued * cfg.block_bytes);
  EXPECT_EQ(mem.enqueue_rejections(), rejected_retries);
}

class BurstSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BurstSweep, PeakBandwidthTracksBusWidth) {
  DramConfig cfg;
  cfg.bus_bytes_per_cycle = GetParam();
  EXPECT_DOUBLE_EQ(cfg.peak_bandwidth_bytes_per_sec(),
                   cfg.channels * static_cast<double>(GetParam()) *
                       cfg.clock_hz);
  EXPECT_EQ(cfg.burst_cycles(), cfg.block_bytes / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, BurstSweep, ::testing::Values(8u, 16u, 32u));

TEST(StrideAnchors, CalibrateMeasuresOrderedAnchors) {
  // The stride sweep must place the effective-bandwidth anchors in order
  // around the fixed calibration stride, with the rates they bracket also
  // ordered. Small request count: anchor placement needs the decay shape,
  // not bandwidth precision.
  const BandwidthProbe probe;
  const BandwidthProfile p = probe.calibrate(12000);
  EXPECT_EQ(p.cal_stride,
            static_cast<double>(BandwidthProbe::kCalibrationStride));
  EXPECT_GE(p.flat_stride, 1.0);
  EXPECT_LT(p.flat_stride, p.cal_stride);
  EXPECT_GT(p.random_stride, p.cal_stride);
  EXPECT_GE(p.streaming, p.strided_gather);
  EXPECT_GE(p.strided_gather, p.random);
  // The default Table IV config genuinely holds streaming rate past
  // stride 2 (open-page scheduling hides early row-hit decay).
  EXPECT_GE(p.flat_stride, 2.0);
}

}  // namespace
}  // namespace booster::memsim
