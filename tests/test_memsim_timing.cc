// Focused DRAM timing-protocol tests: activation-rate limits (tRRD/tFAW),
// back-pressure under conflict-heavy traffic, and cross-config monotonicity
// sweeps. Complements test_memsim.cc's per-bank and end-to-end coverage.
#include <gtest/gtest.h>

#include "memsim/bandwidth_probe.h"
#include "memsim/memory_system.h"
#include "memsim/trace_player.h"

namespace booster::memsim {
namespace {

TEST(ActivationLimits, FawThrottlesRowMissStreams) {
  // Same-channel, all-distinct-row traffic: every access needs an ACT, so
  // throughput is bounded by 4 activates per tFAW window.
  DramConfig cfg;
  cfg.channels = 1;
  const MemorySystem probe_decode(cfg);
  std::vector<TraceEntry> trace;
  const std::uint64_t blocks_per_bank_row =
      cfg.blocks_per_row() * cfg.banks_per_channel;
  for (std::uint64_t i = 0; i < 2000; ++i) {
    // Stride a whole bank-row group so every request opens a new row.
    trace.push_back({i * blocks_per_bank_row, false});
  }
  const TracePlayer player(cfg);
  const auto result = player.replay(trace);
  // <= 4 blocks per tFAW cycles (plus pipeline slack).
  const double blocks_per_cycle =
      static_cast<double>(trace.size()) / static_cast<double>(result.cycles);
  EXPECT_LE(blocks_per_cycle, 4.0 / cfg.tFAW + 0.02);
  EXPECT_EQ(result.row_hit_rate, 0.0);
}

TEST(ActivationLimits, RowHitsBypassActThrottle) {
  DramConfig cfg;
  cfg.channels = 1;
  const TracePlayer player(cfg);
  const auto result = player.replay(TracePlayer::sequential_read(2000));
  // Streaming within rows: far faster than the ACT-bound pattern.
  const double blocks_per_cycle =
      static_cast<double>(2000) / static_cast<double>(result.cycles);
  EXPECT_GT(blocks_per_cycle, 4.0 / cfg.tFAW * 1.3);
  EXPECT_GT(result.row_hit_rate, 0.9);
}

TEST(Timing, SlowerTimingsReduceBandwidth) {
  DramConfig fast;
  DramConfig slow = fast;
  slow.tCAS = slow.tRP = slow.tRCD = 24;
  slow.tRAS = 56;
  const auto fast_bw = BandwidthProbe(fast)
                           .measure(AccessPattern::kRandom, 10000)
                           .bandwidth_bytes_per_sec;
  const auto slow_bw = BandwidthProbe(slow)
                           .measure(AccessPattern::kRandom, 10000)
                           .bandwidth_bytes_per_sec;
  EXPECT_LT(slow_bw, fast_bw);
}

TEST(Timing, StreamingInsensitiveToRowTimings) {
  // Open-page streaming pays tRCD/tRP rarely; bandwidth should barely move.
  DramConfig fast;
  DramConfig slow = fast;
  slow.tRP = 24;
  slow.tRCD = 24;
  const auto fast_bw = BandwidthProbe(fast)
                           .measure(AccessPattern::kStreaming, 20000)
                           .bandwidth_bytes_per_sec;
  const auto slow_bw = BandwidthProbe(slow)
                           .measure(AccessPattern::kStreaming, 20000)
                           .bandwidth_bytes_per_sec;
  EXPECT_GT(slow_bw, fast_bw * 0.95);
}

TEST(QueueDepth, DeeperQueuesNeverHurtRandomTraffic) {
  DramConfig shallow;
  shallow.queue_depth = 4;
  DramConfig deep;
  deep.queue_depth = 64;
  const auto a = BandwidthProbe(shallow)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  const auto b = BandwidthProbe(deep)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  EXPECT_GE(b, a * 0.98);  // FR-FCFS benefits from a wider window
}

TEST(Banks, MoreBanksHelpConflictTraffic) {
  DramConfig few;
  few.banks_per_channel = 2;
  DramConfig many;
  many.banks_per_channel = 16;
  const auto a = BandwidthProbe(few)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  const auto b = BandwidthProbe(many)
                     .measure(AccessPattern::kRandom, 10000)
                     .bandwidth_bytes_per_sec;
  EXPECT_GT(b, a);
}

class BurstSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BurstSweep, PeakBandwidthTracksBusWidth) {
  DramConfig cfg;
  cfg.bus_bytes_per_cycle = GetParam();
  EXPECT_DOUBLE_EQ(cfg.peak_bandwidth_bytes_per_sec(),
                   cfg.channels * static_cast<double>(GetParam()) *
                       cfg.clock_hz);
  EXPECT_EQ(cfg.burst_cycles(), cfg.block_bytes / GetParam());
}

INSTANTIATE_TEST_SUITE_P(Widths, BurstSweep, ::testing::Values(8u, 16u, 32u));

}  // namespace
}  // namespace booster::memsim
