// Serving subsystem contract suite (ISSUE 8 tentpole): the HTTP parser
// under torture (byte-at-a-time arrival, split terminators, pipelining,
// oversized and malformed input), the buffer pool's steady-state
// allocation-free property, and the server end-to-end over real loopback
// sockets -- where the headline assertion is *bit-identity*: every
// prediction served over TCP, in any batch composition, EXPECT_EQ-equals
// local Model::predict on the same rows, and a hot model swap mid-load
// never tears a response (each response is wholly one version, stamped by
// X-Model-Version).
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.h"

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/buffer_pool.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/model_slot.h"
#include "serve/row_binner.h"
#include "serve/server.h"
#include "workloads/synth.h"

namespace booster::serve {
namespace {

using gbdt::BinnedDataset;

/// Model is move-only (it owns its Loss); tests that keep a local copy
/// *and* install one into the slot clone through the text format -- which
/// preserves predictions bit-exactly by the model_io round-trip contract.
gbdt::Model clone_model(const gbdt::Model& model) {
  std::stringstream buffer;
  gbdt::save_model(model, buffer);
  return gbdt::load_model(buffer);
}

// ---------------------------------------------------------------- parser

TEST(RequestParser, ByteAtATimeDeliversIdenticalRequest) {
  const std::string wire =
      "POST /predict HTTP/1.1\r\n"
      "Host: x\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "a,b,c";
  RequestParser parser;
  Request req;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::size_t used = 0;
    const ParseStatus status =
        parser.consume(std::string_view(wire).substr(i, 1), &used, &req);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(status, ParseStatus::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(status, ParseStatus::kRequest);
      EXPECT_EQ(used, 1u);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/predict");
  EXPECT_EQ(req.body, "a,b,c");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(parser.idle());
}

TEST(RequestParser, TerminatorSplitAcrossSegmentsParses) {
  // The CRLFCRLF terminator arrives split at every possible point.
  const std::string head = "GET /healthz HTTP/1.1\r\nHost: x\r\n";
  const std::string tail = "\r\n";
  for (std::size_t split = 0; split <= tail.size(); ++split) {
    RequestParser parser;
    Request req;
    std::size_t used = 0;
    const std::string first = head + tail.substr(0, split);
    const ParseStatus s1 = parser.consume(first, &used, &req);
    if (split == tail.size()) {
      ASSERT_EQ(s1, ParseStatus::kRequest);
      continue;
    }
    ASSERT_EQ(s1, ParseStatus::kNeedMore);
    EXPECT_EQ(used, first.size());
    const ParseStatus s2 = parser.consume(tail.substr(split), &used, &req);
    ASSERT_EQ(s2, ParseStatus::kRequest) << "split " << split;
    EXPECT_EQ(req.target, "/healthz");
  }
}

TEST(RequestParser, PipelinedFollowerStaysUnconsumed) {
  const std::string first =
      "POST /predict HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
  const std::string second = "GET /stats HTTP/1.1\r\n\r\n";
  const std::string wire = first + second;
  RequestParser parser;
  Request req;
  std::size_t used = 0;
  ASSERT_EQ(parser.consume(wire, &used, &req), ParseStatus::kRequest);
  EXPECT_EQ(used, first.size());  // follower untouched
  EXPECT_EQ(req.body, "xyz");
  std::size_t used2 = 0;
  ASSERT_EQ(parser.consume(std::string_view(wire).substr(used), &used2, &req),
            ParseStatus::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/stats");
}

TEST(RequestParser, KeepAliveFoldsVersionAndConnectionHeader) {
  const auto parse_one = [](const std::string& wire) {
    RequestParser parser;
    Request req;
    std::size_t used = 0;
    EXPECT_EQ(parser.consume(wire, &used, &req), ParseStatus::kRequest);
    return req;
  };
  EXPECT_TRUE(parse_one("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(parse_one("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(RequestParser, RejectsLoudlyAndStaysPoisoned) {
  struct Case {
    std::string wire;
    ParseStatus expected;
  };
  ParserLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;
  const std::vector<Case> cases = {
      {"garbage\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/2\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
       ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       ParseStatus::kUnsupported},
      {"POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
       ParseStatus::kBodyTooLarge},
      {"GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a') + "\r\n\r\n",
       ParseStatus::kHeadersTooLarge},
  };
  for (const Case& c : cases) {
    RequestParser parser(limits);
    Request req;
    std::size_t used = 0;
    EXPECT_EQ(parser.consume(c.wire, &used, &req), c.expected) << c.wire;
    // Poisoned: even a pristine request is refused until reset().
    EXPECT_EQ(parser.consume("GET / HTTP/1.1\r\n\r\n", &used, &req),
              ParseStatus::kBadRequest)
        << "parser must stay poisoned";
    parser.reset();
    EXPECT_EQ(parser.consume("GET / HTTP/1.1\r\n\r\n", &used, &req),
              ParseStatus::kRequest);
  }
}

// ----------------------------------------------------------- buffer pool

TEST(BufferPool, SteadyStateIsAllocationFree) {
  BufferPool pool;
  // Warm-up: high-water mark of 2 concurrent buffers.
  std::string a = pool.acquire();
  std::string b = pool.acquire();
  a.append(4096, 'x');
  b.append(4096, 'y');
  pool.release(std::move(a));
  pool.release(std::move(b));
  const std::uint64_t warm_allocations = pool.allocations();
  EXPECT_EQ(warm_allocations, 2u);
  for (int round = 0; round < 1000; ++round) {
    std::string c = pool.acquire();
    std::string d = pool.acquire();
    EXPECT_TRUE(c.empty());
    EXPECT_GE(c.capacity(), 4096u);  // recycled capacity, not a fresh buffer
    c.append(512, 'z');
    pool.release(std::move(c));
    pool.release(std::move(d));
  }
  EXPECT_EQ(pool.allocations(), warm_allocations);  // plateau
  EXPECT_EQ(pool.acquires(), 2u + 2000u);
}

TEST(BufferPool, OversizedReleaseDoesNotPinCapacity) {
  // Regression: release() used to retain arbitrary capacity forever, so a
  // single near-limit request body pinned megabytes in the free list for
  // the server's lifetime.
  BufferPool pool;
  std::string big = pool.acquire();
  big.append(4 * BufferPool::kMaxRetainedCapacity, 'x');
  pool.release(std::move(big));
  EXPECT_EQ(pool.shrunk(), 1u);
  EXPECT_LE(pool.idle_capacity(), BufferPool::kMaxRetainedCapacity);

  // A buffer at the cap is retained with its capacity intact.
  std::string ok = pool.acquire();
  ok.reserve(BufferPool::kMaxRetainedCapacity / 2);
  const std::size_t kept = ok.capacity();
  pool.release(std::move(ok));
  EXPECT_EQ(pool.shrunk(), 1u);
  EXPECT_GE(pool.idle_capacity(), kept);
}

TEST(BufferPool, IdleListIsBounded) {
  // Regression: free_ grew without bound, so a connection burst left its
  // high-water mark of buffers idle forever after draining.
  BufferPool pool;
  std::vector<std::string> burst;
  for (std::size_t i = 0; i < BufferPool::kMaxIdleBuffers + 20; ++i) {
    std::string buf = pool.acquire();
    buf.append(256, 'b');
    burst.push_back(std::move(buf));
  }
  for (auto& buf : burst) pool.release(std::move(buf));
  EXPECT_EQ(pool.idle(), BufferPool::kMaxIdleBuffers);
  EXPECT_EQ(pool.dropped(), 20u);
  EXPECT_LE(pool.idle_capacity(),
            BufferPool::kMaxIdleBuffers * BufferPool::kMaxRetainedCapacity);
}

// ------------------------------------------------------------ end-to-end

struct Fixture {
  explicit Fixture(std::chrono::microseconds window = {},
                   std::uint32_t max_batch_rows = 1024) {
    workloads::DatasetSpec spec;
    spec.name = "serve";
    spec.nominal_records = 400;
    spec.numeric_fields = 5;
    spec.categorical_cardinalities = {6, 3};
    spec.missing_rate = 0.1;
    spec.loss = "logistic";
    raw = workloads::synthesize(spec, 400, 17);
    binned = gbdt::Binner().bin(raw);

    gbdt::TrainerConfig tcfg;
    tcfg.num_trees = 12;
    tcfg.max_depth = 4;
    tcfg.loss = "logistic";
    tcfg.num_threads = 1;
    model.emplace(gbdt::Trainer(tcfg).train(binned).model);
    slot.install(clone_model(*model));

    expected.resize(binned.num_records());
    for (std::uint64_t r = 0; r < binned.num_records(); ++r) {
      expected[r] = model->predict(binned, r);
    }

    ServerConfig scfg;
    scfg.batch_window = window;
    scfg.max_batch_rows = max_batch_rows;
    server = std::make_unique<Server>(scfg, &slot, binned);
    loop = std::thread([this] { server->run(); });
  }

  ~Fixture() {
    server->stop();
    loop.join();
  }

  gbdt::Dataset raw;
  BinnedDataset binned;
  std::optional<gbdt::Model> model;
  ModelSlot slot;
  std::vector<double> expected;
  std::unique_ptr<Server> server;
  std::thread loop;
};

TEST(ServeEndToEnd, CsvPredictionsBitIdenticalToLocalModel) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  std::vector<double> got;
  for (const std::uint64_t first : {0ull, 37ull, 395ull}) {
    const std::string body = csv_rows(fx.raw, first, 11);
    Response resp;
    ASSERT_TRUE(client.request("POST", "/predict", body, &resp));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(resp.header("X-Model-Version"), "1");
    ASSERT_TRUE(parse_predictions(resp.body, &got));
    ASSERT_EQ(got.size(), 11u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      const std::uint64_t row = (first + i) % fx.raw.num_records();
      EXPECT_EQ(got[i], fx.expected[row]) << "row " << row;
    }
  }
}

TEST(ServeEndToEnd, JsonBodyBinsIdenticallyToCsv) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body = json_rows(fx.raw, 5, 9);
  Response resp;
  ASSERT_TRUE(
      client.request("POST", "/predict", body, &resp, "application/json"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 9u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], fx.expected[(5 + i) % fx.raw.num_records()]);
  }
}

TEST(ServeEndToEnd, PipelinedMixedRequestsAnswerInOrder) {
  // Two predicts and a healthz in one write: responses must come back in
  // request order even though the predicts detour through the batch.
  Fixture fx(std::chrono::microseconds(2000));
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body1 = csv_rows(fx.raw, 0, 2);
  const std::string body2 = csv_rows(fx.raw, 2, 3);
  std::string wire;
  wire += "POST /predict HTTP/1.1\r\nContent-Length: " +
          std::to_string(body1.size()) + "\r\n\r\n" + body1;
  wire += "GET /healthz HTTP/1.1\r\n\r\n";
  wire += "POST /predict HTTP/1.1\r\nContent-Length: " +
          std::to_string(body2.size()) + "\r\n\r\n" + body2;
  ASSERT_TRUE(client.send_raw(wire));

  Response r1, r2, r3;
  ASSERT_TRUE(client.read_response(&r1));
  ASSERT_TRUE(client.read_response(&r2));
  ASSERT_TRUE(client.read_response(&r3));
  std::vector<double> got;
  ASSERT_EQ(r1.status, 200);
  ASSERT_TRUE(parse_predictions(r1.body, &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], fx.expected[0]);
  EXPECT_EQ(got[1], fx.expected[1]);
  ASSERT_EQ(r2.status, 200);
  EXPECT_EQ(r2.body, "ok\n");
  ASSERT_EQ(r3.status, 200);
  ASSERT_TRUE(parse_predictions(r3.body, &got));
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], fx.expected[2 + i]);
}

TEST(ServeEndToEnd, HalfClosedClientStillGetsItsAnswer) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body = csv_rows(fx.raw, 1, 1);
  ASSERT_TRUE(client.send_raw("POST /predict HTTP/1.1\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" +
                              body));
  // Half-close before reading: the server sees EOF with a request still
  // buffered, must answer it, then close its side.
  client.shutdown_writes();
  Response resp;
  ASSERT_TRUE(client.read_response(&resp));
  EXPECT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], fx.expected[1]);
  // After the answer, the server closes: next read sees EOF.
  EXPECT_FALSE(client.read_response(&resp));
}

TEST(ServeEndToEnd, MalformedRowsRejectedWithoutPoisoningBatchOrConnection) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  // Wrong arity.
  ASSERT_TRUE(client.request("POST", "/predict", "1.5,2.5\n", &resp));
  EXPECT_EQ(resp.status, 400);
  // Garbage cell.
  ASSERT_TRUE(
      client.request("POST", "/predict", csv_rows(fx.raw, 0, 1) + "x,y\n",
                     &resp));
  EXPECT_EQ(resp.status, 400);
  // Wrong method / unknown target / empty body.
  ASSERT_TRUE(client.request("GET", "/predict", "", &resp));
  EXPECT_EQ(resp.status, 405);
  ASSERT_TRUE(client.request("GET", "/nope", "", &resp));
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(client.request("POST", "/predict", "", &resp));
  EXPECT_EQ(resp.status, 400);
  // The connection survived all of it, and the batch was never corrupted:
  // a good request still answers bit-identically.
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 7, 4),
                             &resp));
  ASSERT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], fx.expected[7 + i]);
}

TEST(ServeEndToEnd, OversizedRequestRejectedAndConnectionClosed) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  // Declared body over the 1 MiB default limit -> 413 before any body
  // bytes are read.
  ASSERT_TRUE(client.send_raw(
      "POST /predict HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n"));
  ASSERT_TRUE(client.read_response(&resp));
  EXPECT_EQ(resp.status, 413);
  // The server closes after an error response; the next read sees EOF.
  EXPECT_FALSE(client.read_response(&resp));

  BlockingClient client2;
  ASSERT_TRUE(client2.connect(fx.server->port()));
  ASSERT_TRUE(client2.send_raw("GET / HTTP/1.1\r\nX-Pad: " +
                               std::string(10000, 'a') + "\r\n\r\n"));
  ASSERT_TRUE(client2.read_response(&resp));
  EXPECT_EQ(resp.status, 431);
}

TEST(ServeEndToEnd, ServesNothingBeforeFirstInstall) {
  workloads::DatasetSpec spec;
  spec.name = "empty";
  spec.nominal_records = 50;
  spec.numeric_fields = 2;
  gbdt::Dataset raw = workloads::synthesize(spec, 50, 3);
  BinnedDataset binned = gbdt::Binner().bin(raw);
  ModelSlot slot;  // nothing installed
  Server server(ServerConfig{}, &slot, binned);
  std::thread loop([&] { server.run(); });
  BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  Response resp;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(raw, 0, 1), &resp));
  EXPECT_EQ(resp.status, 503);
  server.stop();
  loop.join();
}

TEST(ServeEndToEnd, ReloadSwapsModelAndRefusesCorruptFiles) {
  Fixture fx;
  // Train a different model (fewer trees) and save it as a checked
  // container.
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 4;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model v2 = gbdt::Trainer(tcfg).train(fx.binned).model;
  const std::string path = "/tmp/booster_serve_reload_test.model";
  ASSERT_TRUE(gbdt::save_model_checked_file(v2, path));

  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  ASSERT_TRUE(client.request("POST", "/reload", path + "\n", &resp));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.body, "version 2\n");

  // Predictions now come from v2, still bit-identical to local predict.
  std::vector<double> got;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 3, 6),
                             &resp));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.header("X-Model-Version"), "2");
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(got[i], v2.predict(fx.binned, 3 + i));
  }

  // A missing file and a corrupted container are refused with distinct
  // statuses, and the slot keeps serving v2.
  ASSERT_TRUE(client.request("POST", "/reload", "/tmp/nope.model", &resp));
  EXPECT_EQ(resp.status, 409);
  EXPECT_NE(resp.body.find("io-error"), std::string::npos) << resp.body;

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit
  const std::string bad_path = "/tmp/booster_serve_reload_corrupt.model";
  {
    std::ofstream out(bad_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(client.request("POST", "/reload", bad_path, &resp));
  EXPECT_EQ(resp.status, 409);
  EXPECT_NE(resp.body.find("bad-checksum"), std::string::npos) << resp.body;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 0, 1),
                             &resp));
  EXPECT_EQ(resp.header("X-Model-Version"), "2");
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(ServeEndToEnd, ReloadStallIsMeasuredAndConcurrentRequestsSurviveIt) {
  // /reload runs file read + CRC + flattening inline on the event loop, so
  // requests queued behind it stall for the documented O(model bytes)
  // bound. The server must (a) expose that stall in /stats and (b) answer
  // every concurrently in-flight request correctly -- stalled, never
  // dropped or torn.
  Fixture fx;
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 4;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model v2 = gbdt::Trainer(tcfg).train(fx.binned).model;
  std::vector<double> v2_expected(fx.binned.num_records());
  for (std::uint64_t r = 0; r < fx.binned.num_records(); ++r) {
    v2_expected[r] = v2.predict(fx.binned, r);
  }
  const std::string path = "/tmp/booster_serve_reload_stall_test.model";
  ASSERT_TRUE(gbdt::save_model_checked_file(v2, path));

  // Clients hammer /predict while the reloader swaps models; every
  // response must be wholly one version's output.
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect(fx.server->port())) {
        bad += 1000;
        return;
      }
      std::vector<double> got;
      Response resp;
      for (int k = 0; k < 50; ++k) {
        const std::uint64_t first = (c * 83 + k * 7) % fx.raw.num_records();
        if (!client.request("POST", "/predict", csv_rows(fx.raw, first, 3),
                            &resp) ||
            resp.status != 200 || !parse_predictions(resp.body, &got) ||
            got.size() != 3) {
          ++bad;
          continue;
        }
        const std::string_view header = resp.header("X-Model-Version");
        std::uint64_t version = 0;
        std::from_chars(header.data(), header.data() + header.size(),
                        version);
        const std::vector<double>& expect_from =
            version >= 2 ? v2_expected : fx.expected;
        for (int i = 0; i < 3; ++i) {
          const std::uint64_t row = (first + i) % fx.raw.num_records();
          if (got[i] != expect_from[row]) ++bad;
        }
      }
    });
  }

  BlockingClient reloader;
  ASSERT_TRUE(reloader.connect(fx.server->port()));
  Response resp;
  int reloads = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reloader.request("POST", "/reload", path, &resp));
    ASSERT_EQ(resp.status, 200) << resp.body;
    ++reloads;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);

  ASSERT_TRUE(reloader.request("GET", "/stats", "", &resp));
  ASSERT_EQ(resp.status, 200);
  std::string error;
  const auto stats = sim::Json::parse(resp.body, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->find("reloads")->as_double(), reloads);
  const auto* total = stats->find("reload_stall_us_total");
  const auto* max = stats->find("reload_stall_us_max");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(max, nullptr);
  EXPECT_GT(total->as_double(), 0.0);
  EXPECT_GE(total->as_double(), max->as_double());
  std::remove(path.c_str());
}

TEST(ServeEndToEnd, ClosedLoopHarnessGatesOnBitIdentity) {
  Fixture fx(std::chrono::microseconds(200));
  LoadConfig lcfg;
  lcfg.port = fx.server->port();
  lcfg.connections = 4;
  lcfg.requests_per_connection = 30;
  lcfg.rows_per_request = 7;
  const LoadResult result = run_closed_loop(lcfg, fx.raw, fx.expected);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.requests, 4u * 30u);
  EXPECT_EQ(result.rows, 4u * 30u * 7u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GT(result.p50_us, 0.0);
  EXPECT_GE(result.p99_us, result.p50_us);
}

TEST(ServeEndToEnd, ConnectionChurnReachesAllocationFreeSteadyState) {
  Fixture fx;
  // Sequential churn: each connection acquires 2 pooled buffers and
  // releases them on close, so allocations must plateau at the concurrent
  // high-water mark while acquires keep climbing.
  for (int round = 0; round < 40; ++round) {
    BlockingClient client;
    ASSERT_TRUE(client.connect(fx.server->port()));
    Response resp;
    ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, round, 2),
                               &resp));
    ASSERT_EQ(resp.status, 200);
  }
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  ASSERT_TRUE(client.request("GET", "/stats", "", &resp));
  ASSERT_EQ(resp.status, 200);
  std::string error;
  const auto stats = sim::Json::parse(resp.body, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  const double allocations = stats->find("buffer_allocations")->as_double();
  const double acquires = stats->find("buffer_acquires")->as_double();
  // 40 churned connections + this one = 82 acquires minimum; the pool may
  // only ever have allocated for the *concurrent* high-water mark (a
  // handful: churned connections overlap briefly in TIME_WAIT handoff).
  EXPECT_GE(acquires, 82.0);
  EXPECT_LE(allocations, 8.0);
}

TEST(ServeEndToEnd, HotSwapMidLoadNeverTearsAResponse) {
  Fixture fx(std::chrono::microseconds(300));
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 3;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model alt = gbdt::Trainer(tcfg).train(fx.binned).model;
  std::vector<double> alt_expected(fx.binned.num_records());
  for (std::uint64_t r = 0; r < fx.binned.num_records(); ++r) {
    alt_expected[r] = alt.predict(fx.binned, r);
  }

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    // Keep installing fresh versions, alternating models, while the
    // clients hammer /predict. Version 1 is the fixture install; the
    // swapper's installs get versions 2, 3, 4, ... -- even versions are
    // `alt`, odd versions are the original model.
    int i = 0;
    while (!done.load()) {
      fx.slot.install(clone_model(i % 2 == 0 ? alt : *fx.model));
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Every response must be *wholly* one model's output: the version header
  // names which, and all rows must match that version bit-for-bit.
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> torn{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect(fx.server->port())) {
        torn += 1000;
        return;
      }
      std::vector<double> got;
      Response resp;
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t first = (c * 61 + k * 5) % fx.raw.num_records();
        if (!client.request("POST", "/predict", csv_rows(fx.raw, first, 4),
                            &resp) ||
            resp.status != 200 || !parse_predictions(resp.body, &got) ||
            got.size() != 4) {
          ++torn;
          continue;
        }
        const std::string_view header = resp.header("X-Model-Version");
        std::uint64_t version = 0;
        std::from_chars(header.data(), header.data() + header.size(),
                        version);
        if (version == 0) {
          ++torn;
          continue;
        }
        const std::vector<double>& expect_from =
            version % 2 == 0 ? alt_expected : fx.expected;
        bool matches_signed = true;
        for (int i = 0; i < 4; ++i) {
          const std::uint64_t row = (first + i) % fx.raw.num_records();
          if (got[i] != expect_from[row]) matches_signed = false;
        }
        if (!matches_signed) ++torn;
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(torn.load(), 0u);
}

}  // namespace
}  // namespace booster::serve
