// Serving subsystem contract suite (ISSUE 8 tentpole): the HTTP parser
// under torture (byte-at-a-time arrival, split terminators, pipelining,
// oversized and malformed input), the buffer pool's steady-state
// allocation-free property, and the server end-to-end over real loopback
// sockets -- where the headline assertion is *bit-identity*: every
// prediction served over TCP, in any batch composition, EXPECT_EQ-equals
// local Model::predict on the same rows, and a hot model swap mid-load
// never tears a response (each response is wholly one version, stamped by
// X-Model-Version).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>

#include <atomic>
#include <chrono>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "sim/json.h"

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/buffer_pool.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/model_slot.h"
#include "serve/row_binner.h"
#include "serve/server.h"
#include "workloads/synth.h"

namespace booster::serve {
namespace {

using gbdt::BinnedDataset;

/// Model is move-only (it owns its Loss); tests that keep a local copy
/// *and* install one into the slot clone through the text format -- which
/// preserves predictions bit-exactly by the model_io round-trip contract.
gbdt::Model clone_model(const gbdt::Model& model) {
  std::stringstream buffer;
  gbdt::save_model(model, buffer);
  return gbdt::load_model(buffer);
}

// ---------------------------------------------------------------- parser

TEST(RequestParser, ByteAtATimeDeliversIdenticalRequest) {
  const std::string wire =
      "POST /predict HTTP/1.1\r\n"
      "Host: x\r\n"
      "Content-Length: 5\r\n"
      "\r\n"
      "a,b,c";
  RequestParser parser;
  Request req;
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    std::size_t used = 0;
    const ParseStatus status =
        parser.consume(std::string_view(wire).substr(i, 1), &used, &req);
    if (i + 1 < wire.size()) {
      ASSERT_EQ(status, ParseStatus::kNeedMore) << "byte " << i;
    } else {
      ASSERT_EQ(status, ParseStatus::kRequest);
      EXPECT_EQ(used, 1u);
      ++delivered;
    }
  }
  EXPECT_EQ(delivered, 1u);
  EXPECT_EQ(req.method, "POST");
  EXPECT_EQ(req.target, "/predict");
  EXPECT_EQ(req.body, "a,b,c");
  EXPECT_TRUE(req.keep_alive);
  EXPECT_TRUE(parser.idle());
}

TEST(RequestParser, TerminatorSplitAcrossSegmentsParses) {
  // The CRLFCRLF terminator arrives split at every possible point.
  const std::string head = "GET /healthz HTTP/1.1\r\nHost: x\r\n";
  const std::string tail = "\r\n";
  for (std::size_t split = 0; split <= tail.size(); ++split) {
    RequestParser parser;
    Request req;
    std::size_t used = 0;
    const std::string first = head + tail.substr(0, split);
    const ParseStatus s1 = parser.consume(first, &used, &req);
    if (split == tail.size()) {
      ASSERT_EQ(s1, ParseStatus::kRequest);
      continue;
    }
    ASSERT_EQ(s1, ParseStatus::kNeedMore);
    EXPECT_EQ(used, first.size());
    const ParseStatus s2 = parser.consume(tail.substr(split), &used, &req);
    ASSERT_EQ(s2, ParseStatus::kRequest) << "split " << split;
    EXPECT_EQ(req.target, "/healthz");
  }
}

TEST(RequestParser, PipelinedFollowerStaysUnconsumed) {
  const std::string first =
      "POST /predict HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz";
  const std::string second = "GET /stats HTTP/1.1\r\n\r\n";
  const std::string wire = first + second;
  RequestParser parser;
  Request req;
  std::size_t used = 0;
  ASSERT_EQ(parser.consume(wire, &used, &req), ParseStatus::kRequest);
  EXPECT_EQ(used, first.size());  // follower untouched
  EXPECT_EQ(req.body, "xyz");
  std::size_t used2 = 0;
  ASSERT_EQ(parser.consume(std::string_view(wire).substr(used), &used2, &req),
            ParseStatus::kRequest);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.target, "/stats");
}

TEST(RequestParser, KeepAliveFoldsVersionAndConnectionHeader) {
  const auto parse_one = [](const std::string& wire) {
    RequestParser parser;
    Request req;
    std::size_t used = 0;
    EXPECT_EQ(parser.consume(wire, &used, &req), ParseStatus::kRequest);
    return req;
  };
  EXPECT_TRUE(parse_one("GET / HTTP/1.1\r\n\r\n").keep_alive);
  EXPECT_FALSE(parse_one("GET / HTTP/1.0\r\n\r\n").keep_alive);
  EXPECT_FALSE(
      parse_one("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keep_alive);
  EXPECT_TRUE(
      parse_one("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
          .keep_alive);
}

TEST(RequestParser, RejectsLoudlyAndStaysPoisoned) {
  struct Case {
    std::string wire;
    ParseStatus expected;
  };
  ParserLimits limits;
  limits.max_header_bytes = 128;
  limits.max_body_bytes = 64;
  const std::vector<Case> cases = {
      {"garbage\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/2\r\n\r\n", ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\n",
       ParseStatus::kBadRequest},
      {"GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
       ParseStatus::kBadRequest},
      {"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
       ParseStatus::kUnsupported},
      {"POST / HTTP/1.1\r\nContent-Length: 65\r\n\r\n",
       ParseStatus::kBodyTooLarge},
      {"GET / HTTP/1.1\r\nX-Pad: " + std::string(200, 'a') + "\r\n\r\n",
       ParseStatus::kHeadersTooLarge},
  };
  for (const Case& c : cases) {
    RequestParser parser(limits);
    Request req;
    std::size_t used = 0;
    EXPECT_EQ(parser.consume(c.wire, &used, &req), c.expected) << c.wire;
    // Poisoned: even a pristine request is refused until reset().
    EXPECT_EQ(parser.consume("GET / HTTP/1.1\r\n\r\n", &used, &req),
              ParseStatus::kBadRequest)
        << "parser must stay poisoned";
    parser.reset();
    EXPECT_EQ(parser.consume("GET / HTTP/1.1\r\n\r\n", &used, &req),
              ParseStatus::kRequest);
  }
}

// ----------------------------------------------------------- buffer pool

TEST(BufferPool, SteadyStateIsAllocationFree) {
  BufferPool pool;
  // Warm-up: high-water mark of 2 concurrent buffers.
  std::string a = pool.acquire();
  std::string b = pool.acquire();
  a.append(4096, 'x');
  b.append(4096, 'y');
  pool.release(std::move(a));
  pool.release(std::move(b));
  const std::uint64_t warm_allocations = pool.allocations();
  EXPECT_EQ(warm_allocations, 2u);
  for (int round = 0; round < 1000; ++round) {
    std::string c = pool.acquire();
    std::string d = pool.acquire();
    EXPECT_TRUE(c.empty());
    EXPECT_GE(c.capacity(), 4096u);  // recycled capacity, not a fresh buffer
    c.append(512, 'z');
    pool.release(std::move(c));
    pool.release(std::move(d));
  }
  EXPECT_EQ(pool.allocations(), warm_allocations);  // plateau
  EXPECT_EQ(pool.acquires(), 2u + 2000u);
}

TEST(BufferPool, OversizedReleaseDoesNotPinCapacity) {
  // Regression: release() used to retain arbitrary capacity forever, so a
  // single near-limit request body pinned megabytes in the free list for
  // the server's lifetime.
  BufferPool pool;
  std::string big = pool.acquire();
  big.append(4 * BufferPool::kMaxRetainedCapacity, 'x');
  pool.release(std::move(big));
  EXPECT_EQ(pool.shrunk(), 1u);
  EXPECT_LE(pool.idle_capacity(), BufferPool::kMaxRetainedCapacity);

  // A buffer at the cap is retained with its capacity intact.
  std::string ok = pool.acquire();
  ok.reserve(BufferPool::kMaxRetainedCapacity / 2);
  const std::size_t kept = ok.capacity();
  pool.release(std::move(ok));
  EXPECT_EQ(pool.shrunk(), 1u);
  EXPECT_GE(pool.idle_capacity(), kept);
}

TEST(BufferPool, IdleListIsBounded) {
  // Regression: free_ grew without bound, so a connection burst left its
  // high-water mark of buffers idle forever after draining.
  BufferPool pool;
  std::vector<std::string> burst;
  for (std::size_t i = 0; i < BufferPool::kMaxIdleBuffers + 20; ++i) {
    std::string buf = pool.acquire();
    buf.append(256, 'b');
    burst.push_back(std::move(buf));
  }
  for (auto& buf : burst) pool.release(std::move(buf));
  EXPECT_EQ(pool.idle(), BufferPool::kMaxIdleBuffers);
  EXPECT_EQ(pool.dropped(), 20u);
  EXPECT_LE(pool.idle_capacity(),
            BufferPool::kMaxIdleBuffers * BufferPool::kMaxRetainedCapacity);
}

// ------------------------------------------------------------ end-to-end

struct Fixture {
  static ServerConfig config_with(std::chrono::microseconds window,
                                  std::uint32_t max_batch_rows) {
    ServerConfig scfg;
    scfg.batch_window = window;
    scfg.max_batch_rows = max_batch_rows;
    return scfg;
  }

  explicit Fixture(std::chrono::microseconds window = {},
                   std::uint32_t max_batch_rows = 1024)
      : Fixture(config_with(window, max_batch_rows)) {}

  explicit Fixture(ServerConfig scfg) {
    workloads::DatasetSpec spec;
    spec.name = "serve";
    spec.nominal_records = 400;
    spec.numeric_fields = 5;
    spec.categorical_cardinalities = {6, 3};
    spec.missing_rate = 0.1;
    spec.loss = "logistic";
    raw = workloads::synthesize(spec, 400, 17);
    binned = gbdt::Binner().bin(raw);

    gbdt::TrainerConfig tcfg;
    tcfg.num_trees = 12;
    tcfg.max_depth = 4;
    tcfg.loss = "logistic";
    tcfg.num_threads = 1;
    model.emplace(gbdt::Trainer(tcfg).train(binned).model);
    slot.install(clone_model(*model));

    expected.resize(binned.num_records());
    for (std::uint64_t r = 0; r < binned.num_records(); ++r) {
      expected[r] = model->predict(binned, r);
    }

    server = std::make_unique<Server>(scfg, &slot, binned);
    loop = std::thread([this] { server->run(); });
  }

  ~Fixture() {
    server->stop();
    loop.join();
  }

  gbdt::Dataset raw;
  BinnedDataset binned;
  std::optional<gbdt::Model> model;
  ModelSlot slot;
  std::vector<double> expected;
  std::unique_ptr<Server> server;
  std::thread loop;
};

/// GET /stats over `client`, parsed; nullopt on any failure.
std::optional<sim::Json> get_stats(BlockingClient* client) {
  Response resp;
  if (!client->request("GET", "/stats", "", &resp) || resp.status != 200) {
    return std::nullopt;
  }
  std::string error;
  return sim::Json::parse(resp.body, &error);
}

double stat_value(const sim::Json& stats, const char* key) {
  const sim::Json* v = stats.find(key);
  return v == nullptr ? -1.0 : v->as_double();
}

/// Polls /stats until `key` >= `at_least`. The polling itself keeps this
/// connection active (relevant for the idle-reap test: the prober must
/// survive the sweep). Deadlines are generous for sanitizer slowdown.
bool wait_for_stat(BlockingClient* client, const char* key, double at_least,
                   std::chrono::milliseconds deadline =
                       std::chrono::milliseconds(15000)) {
  const auto until = std::chrono::steady_clock::now() + deadline;
  while (std::chrono::steady_clock::now() < until) {
    const auto stats = get_stats(client);
    if (!stats.has_value()) return false;
    if (stat_value(*stats, key) >= at_least) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

std::string framed_predict(const std::string& body) {
  return "POST /predict HTTP/1.1\r\nContent-Length: " +
         std::to_string(body.size()) + "\r\n\r\n" + body;
}

TEST(ServeEndToEnd, CsvPredictionsBitIdenticalToLocalModel) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  std::vector<double> got;
  for (const std::uint64_t first : {0ull, 37ull, 395ull}) {
    const std::string body = csv_rows(fx.raw, first, 11);
    Response resp;
    ASSERT_TRUE(client.request("POST", "/predict", body, &resp));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(resp.header("X-Model-Version"), "1");
    ASSERT_TRUE(parse_predictions(resp.body, &got));
    ASSERT_EQ(got.size(), 11u);
    for (std::size_t i = 0; i < got.size(); ++i) {
      const std::uint64_t row = (first + i) % fx.raw.num_records();
      EXPECT_EQ(got[i], fx.expected[row]) << "row " << row;
    }
  }
}

TEST(ServeEndToEnd, JsonBodyBinsIdenticallyToCsv) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body = json_rows(fx.raw, 5, 9);
  Response resp;
  ASSERT_TRUE(
      client.request("POST", "/predict", body, &resp, "application/json"));
  ASSERT_EQ(resp.status, 200) << resp.body;
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 9u);
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], fx.expected[(5 + i) % fx.raw.num_records()]);
  }
}

TEST(ServeEndToEnd, PipelinedMixedRequestsAnswerInOrder) {
  // Two predicts and a healthz in one write: responses must come back in
  // request order even though the predicts detour through the batch.
  Fixture fx(std::chrono::microseconds(2000));
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body1 = csv_rows(fx.raw, 0, 2);
  const std::string body2 = csv_rows(fx.raw, 2, 3);
  std::string wire;
  wire += "POST /predict HTTP/1.1\r\nContent-Length: " +
          std::to_string(body1.size()) + "\r\n\r\n" + body1;
  wire += "GET /healthz HTTP/1.1\r\n\r\n";
  wire += "POST /predict HTTP/1.1\r\nContent-Length: " +
          std::to_string(body2.size()) + "\r\n\r\n" + body2;
  ASSERT_TRUE(client.send_raw(wire));

  Response r1, r2, r3;
  ASSERT_TRUE(client.read_response(&r1));
  ASSERT_TRUE(client.read_response(&r2));
  ASSERT_TRUE(client.read_response(&r3));
  std::vector<double> got;
  ASSERT_EQ(r1.status, 200);
  ASSERT_TRUE(parse_predictions(r1.body, &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], fx.expected[0]);
  EXPECT_EQ(got[1], fx.expected[1]);
  ASSERT_EQ(r2.status, 200);
  EXPECT_EQ(r2.body, "ok\n");
  ASSERT_EQ(r3.status, 200);
  ASSERT_TRUE(parse_predictions(r3.body, &got));
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], fx.expected[2 + i]);
}

TEST(ServeEndToEnd, HalfClosedClientStillGetsItsAnswer) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  const std::string body = csv_rows(fx.raw, 1, 1);
  ASSERT_TRUE(client.send_raw("POST /predict HTTP/1.1\r\nContent-Length: " +
                              std::to_string(body.size()) + "\r\n\r\n" +
                              body));
  // Half-close before reading: the server sees EOF with a request still
  // buffered, must answer it, then close its side.
  client.shutdown_writes();
  Response resp;
  ASSERT_TRUE(client.read_response(&resp));
  EXPECT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], fx.expected[1]);
  // After the answer, the server closes: next read sees EOF.
  EXPECT_FALSE(client.read_response(&resp));
}

TEST(ServeEndToEnd, MalformedRowsRejectedWithoutPoisoningBatchOrConnection) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  // Wrong arity.
  ASSERT_TRUE(client.request("POST", "/predict", "1.5,2.5\n", &resp));
  EXPECT_EQ(resp.status, 400);
  // Garbage cell.
  ASSERT_TRUE(
      client.request("POST", "/predict", csv_rows(fx.raw, 0, 1) + "x,y\n",
                     &resp));
  EXPECT_EQ(resp.status, 400);
  // Wrong method / unknown target / empty body.
  ASSERT_TRUE(client.request("GET", "/predict", "", &resp));
  EXPECT_EQ(resp.status, 405);
  ASSERT_TRUE(client.request("GET", "/nope", "", &resp));
  EXPECT_EQ(resp.status, 404);
  ASSERT_TRUE(client.request("POST", "/predict", "", &resp));
  EXPECT_EQ(resp.status, 400);
  // The connection survived all of it, and the batch was never corrupted:
  // a good request still answers bit-identically.
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 7, 4),
                             &resp));
  ASSERT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], fx.expected[7 + i]);
}

TEST(ServeEndToEnd, OversizedRequestRejectedAndConnectionClosed) {
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  // Declared body over the 1 MiB default limit -> 413 before any body
  // bytes are read.
  ASSERT_TRUE(client.send_raw(
      "POST /predict HTTP/1.1\r\nContent-Length: 10000000\r\n\r\n"));
  ASSERT_TRUE(client.read_response(&resp));
  EXPECT_EQ(resp.status, 413);
  // The server closes after an error response; the next read sees EOF.
  EXPECT_FALSE(client.read_response(&resp));

  BlockingClient client2;
  ASSERT_TRUE(client2.connect(fx.server->port()));
  ASSERT_TRUE(client2.send_raw("GET / HTTP/1.1\r\nX-Pad: " +
                               std::string(10000, 'a') + "\r\n\r\n"));
  ASSERT_TRUE(client2.read_response(&resp));
  EXPECT_EQ(resp.status, 431);
}

TEST(ServeEndToEnd, ServesNothingBeforeFirstInstall) {
  workloads::DatasetSpec spec;
  spec.name = "empty";
  spec.nominal_records = 50;
  spec.numeric_fields = 2;
  gbdt::Dataset raw = workloads::synthesize(spec, 50, 3);
  BinnedDataset binned = gbdt::Binner().bin(raw);
  ModelSlot slot;  // nothing installed
  Server server(ServerConfig{}, &slot, binned);
  std::thread loop([&] { server.run(); });
  BlockingClient client;
  ASSERT_TRUE(client.connect(server.port()));
  Response resp;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(raw, 0, 1), &resp));
  EXPECT_EQ(resp.status, 503);
  server.stop();
  loop.join();
}

TEST(ServeEndToEnd, ReloadSwapsModelAndRefusesCorruptFiles) {
  Fixture fx;
  // Train a different model (fewer trees) and save it as a checked
  // container.
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 4;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model v2 = gbdt::Trainer(tcfg).train(fx.binned).model;
  const std::string path = "/tmp/booster_serve_reload_test.model";
  ASSERT_TRUE(gbdt::save_model_checked_file(v2, path));

  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  ASSERT_TRUE(client.request("POST", "/reload", path + "\n", &resp));
  ASSERT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.body, "version 2\n");

  // Predictions now come from v2, still bit-identical to local predict.
  std::vector<double> got;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 3, 6),
                             &resp));
  ASSERT_EQ(resp.status, 200);
  EXPECT_EQ(resp.header("X-Model-Version"), "2");
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(got[i], v2.predict(fx.binned, 3 + i));
  }

  // A missing file and a corrupted container are refused with distinct
  // statuses, and the slot keeps serving v2.
  ASSERT_TRUE(client.request("POST", "/reload", "/tmp/nope.model", &resp));
  EXPECT_EQ(resp.status, 409);
  EXPECT_NE(resp.body.find("io-error"), std::string::npos) << resp.body;

  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), {});
  }
  bytes[bytes.size() / 2] ^= 0x40;  // flip a payload bit
  const std::string bad_path = "/tmp/booster_serve_reload_corrupt.model";
  {
    std::ofstream out(bad_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  ASSERT_TRUE(client.request("POST", "/reload", bad_path, &resp));
  EXPECT_EQ(resp.status, 409);
  EXPECT_NE(resp.body.find("bad-checksum"), std::string::npos) << resp.body;
  ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, 0, 1),
                             &resp));
  EXPECT_EQ(resp.header("X-Model-Version"), "2");
  std::remove(path.c_str());
  std::remove(bad_path.c_str());
}

TEST(ServeEndToEnd, ReloadRunsOffLoopAndConcurrentRequestsSurviveIt) {
  // /reload hands the file read + CRC + flattening to the reload worker;
  // the event loop only pays for the job hand-off and the result drain.
  // The server must (a) show that residual on-loop cost staying tiny in
  // /stats (the before/after metric for the off-loop change) and (b)
  // answer every concurrently in-flight request correctly -- never
  // dropped or torn, each response wholly one version's output.
  Fixture fx;
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 4;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model v2 = gbdt::Trainer(tcfg).train(fx.binned).model;
  std::vector<double> v2_expected(fx.binned.num_records());
  for (std::uint64_t r = 0; r < fx.binned.num_records(); ++r) {
    v2_expected[r] = v2.predict(fx.binned, r);
  }
  const std::string path = "/tmp/booster_serve_reload_stall_test.model";
  ASSERT_TRUE(gbdt::save_model_checked_file(v2, path));

  // Clients hammer /predict while the reloader swaps models; every
  // response must be wholly one version's output.
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect(fx.server->port())) {
        bad += 1000;
        return;
      }
      std::vector<double> got;
      Response resp;
      for (int k = 0; k < 50; ++k) {
        const std::uint64_t first = (c * 83 + k * 7) % fx.raw.num_records();
        if (!client.request("POST", "/predict", csv_rows(fx.raw, first, 3),
                            &resp) ||
            resp.status != 200 || !parse_predictions(resp.body, &got) ||
            got.size() != 3) {
          ++bad;
          continue;
        }
        const std::string_view header = resp.header("X-Model-Version");
        std::uint64_t version = 0;
        std::from_chars(header.data(), header.data() + header.size(),
                        version);
        const std::vector<double>& expect_from =
            version >= 2 ? v2_expected : fx.expected;
        for (int i = 0; i < 3; ++i) {
          const std::uint64_t row = (first + i) % fx.raw.num_records();
          if (got[i] != expect_from[row]) ++bad;
        }
      }
    });
  }

  BlockingClient reloader;
  ASSERT_TRUE(reloader.connect(fx.server->port()));
  Response resp;
  int reloads = 0;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(reloader.request("POST", "/reload", path, &resp));
    ASSERT_EQ(resp.status, 200) << resp.body;
    ++reloads;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0u);

  ASSERT_TRUE(reloader.request("GET", "/stats", "", &resp));
  ASSERT_EQ(resp.status, 200);
  std::string error;
  const auto stats = sim::Json::parse(resp.body, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->find("reloads")->as_double(), reloads);
  const auto* total = stats->find("reload_stall_us_total");
  const auto* max = stats->find("reload_stall_us_max");
  ASSERT_NE(total, nullptr);
  ASSERT_NE(max, nullptr);
  EXPECT_GE(total->as_double(), max->as_double());
  // The on-loop cost per reload is a mailbox hand-off + a response
  // enqueue -- microseconds. 5 ms of headroom absorbs scheduler noise
  // while still proving the loop no longer pays the O(model bytes)
  // load + flatten (which is exactly what the inline implementation
  // charged here).
  EXPECT_LT(max->as_double(), 5000.0);
  std::remove(path.c_str());
}

TEST(ServeEndToEnd, ClosedLoopHarnessGatesOnBitIdentity) {
  Fixture fx(std::chrono::microseconds(200));
  LoadConfig lcfg;
  lcfg.port = fx.server->port();
  lcfg.connections = 4;
  lcfg.requests_per_connection = 30;
  lcfg.rows_per_request = 7;
  const LoadResult result = run_closed_loop(lcfg, fx.raw, fx.expected);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_EQ(result.requests, 4u * 30u);
  EXPECT_EQ(result.rows, 4u * 30u * 7u);
  EXPECT_GT(result.qps, 0.0);
  EXPECT_GT(result.p50_us, 0.0);
  EXPECT_GE(result.p99_us, result.p50_us);
}

TEST(ServeEndToEnd, ConnectionChurnReachesAllocationFreeSteadyState) {
  Fixture fx;
  // Sequential churn: each connection acquires 2 pooled buffers and
  // releases them on close, so allocations must plateau at the concurrent
  // high-water mark while acquires keep climbing.
  for (int round = 0; round < 40; ++round) {
    BlockingClient client;
    ASSERT_TRUE(client.connect(fx.server->port()));
    Response resp;
    ASSERT_TRUE(client.request("POST", "/predict", csv_rows(fx.raw, round, 2),
                               &resp));
    ASSERT_EQ(resp.status, 200);
  }
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  ASSERT_TRUE(client.request("GET", "/stats", "", &resp));
  ASSERT_EQ(resp.status, 200);
  std::string error;
  const auto stats = sim::Json::parse(resp.body, &error);
  ASSERT_TRUE(stats.has_value()) << error;
  const double allocations = stats->find("buffer_allocations")->as_double();
  const double acquires = stats->find("buffer_acquires")->as_double();
  // 40 churned connections + this one = 82 acquires minimum; the pool may
  // only ever have allocated for the *concurrent* high-water mark (a
  // handful: churned connections overlap briefly in TIME_WAIT handoff).
  EXPECT_GE(acquires, 82.0);
  EXPECT_LE(allocations, 8.0);
}

TEST(ServeEndToEnd, HotSwapMidLoadNeverTearsAResponse) {
  Fixture fx(std::chrono::microseconds(300));
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 3;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model alt = gbdt::Trainer(tcfg).train(fx.binned).model;
  std::vector<double> alt_expected(fx.binned.num_records());
  for (std::uint64_t r = 0; r < fx.binned.num_records(); ++r) {
    alt_expected[r] = alt.predict(fx.binned, r);
  }

  std::atomic<bool> done{false};
  std::thread swapper([&] {
    // Keep installing fresh versions, alternating models, while the
    // clients hammer /predict. Version 1 is the fixture install; the
    // swapper's installs get versions 2, 3, 4, ... -- even versions are
    // `alt`, odd versions are the original model.
    int i = 0;
    while (!done.load()) {
      fx.slot.install(clone_model(i % 2 == 0 ? alt : *fx.model));
      ++i;
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });

  // Every response must be *wholly* one model's output: the version header
  // names which, and all rows must match that version bit-for-bit.
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> torn{0};
  for (int c = 0; c < 3; ++c) {
    clients.emplace_back([&, c] {
      BlockingClient client;
      if (!client.connect(fx.server->port())) {
        torn += 1000;
        return;
      }
      std::vector<double> got;
      Response resp;
      for (int k = 0; k < 60; ++k) {
        const std::uint64_t first = (c * 61 + k * 5) % fx.raw.num_records();
        if (!client.request("POST", "/predict", csv_rows(fx.raw, first, 4),
                            &resp) ||
            resp.status != 200 || !parse_predictions(resp.body, &got) ||
            got.size() != 4) {
          ++torn;
          continue;
        }
        const std::string_view header = resp.header("X-Model-Version");
        std::uint64_t version = 0;
        std::from_chars(header.data(), header.data() + header.size(),
                        version);
        if (version == 0) {
          ++torn;
          continue;
        }
        const std::vector<double>& expect_from =
            version % 2 == 0 ? alt_expected : fx.expected;
        bool matches_signed = true;
        for (int i = 0; i < 4; ++i) {
          const std::uint64_t row = (first + i) % fx.raw.num_records();
          if (got[i] != expect_from[row]) matches_signed = false;
        }
        if (!matches_signed) ++torn;
      }
    });
  }
  for (auto& t : clients) t.join();
  done.store(true);
  swapper.join();
  EXPECT_EQ(torn.load(), 0u);
}

// ------------------------------------------------- overload robustness

TEST(ServeOverload, QueryStringsRouteOnPathOnly) {
  // Regression: handle_request matched req.target exactly, so any query
  // string fell through to 404.
  Fixture fx;
  BlockingClient client;
  ASSERT_TRUE(client.connect(fx.server->port()));
  Response resp;
  ASSERT_TRUE(client.request("GET", "/healthz?probe=1", "", &resp));
  EXPECT_EQ(resp.status, 200);
  EXPECT_EQ(resp.body, "ok\n");
  ASSERT_TRUE(client.request("POST", "/predict?debug=batching",
                             csv_rows(fx.raw, 0, 3), &resp));
  ASSERT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[i], fx.expected[i]);
  ASSERT_TRUE(client.request("GET", "/stats?pretty", "", &resp));
  EXPECT_EQ(resp.status, 200);
  std::string error;
  EXPECT_TRUE(sim::Json::parse(resp.body, &error).has_value()) << error;
  // Unknown paths still 404, query string or not.
  ASSERT_TRUE(client.request("GET", "/nope?x=1", "", &resp));
  EXPECT_EQ(resp.status, 404);
}

TEST(ServeOverload, PredictsPastWatermarkShedPromptlyAndAdmittedStayExact) {
  // A long batch window holds admitted rows in the staged queue, so the
  // shed watermark is observable deterministically: two admitted requests
  // fill the queue past shed_rows_watermark, and a third must get its 503
  // *immediately* -- long before the window flushes -- while the admitted
  // rows still come back bit-identical.
  ServerConfig scfg = Fixture::config_with(std::chrono::microseconds(0), 1024);
  scfg.batch_window = std::chrono::seconds(2);
  scfg.shed_rows_watermark = 8;
  Fixture fx(scfg);
  BlockingClient a, b, c, probe;
  ASSERT_TRUE(a.connect(fx.server->port()));
  ASSERT_TRUE(b.connect(fx.server->port()));
  ASSERT_TRUE(c.connect(fx.server->port()));
  ASSERT_TRUE(probe.connect(fx.server->port()));

  ASSERT_TRUE(a.send_raw(framed_predict(csv_rows(fx.raw, 0, 5))));
  ASSERT_TRUE(wait_for_stat(&probe, "staged_rows", 5.0));
  ASSERT_TRUE(b.send_raw(framed_predict(csv_rows(fx.raw, 5, 4))));
  ASSERT_TRUE(wait_for_stat(&probe, "staged_rows", 9.0));

  // 9 staged rows >= watermark 8: C is shed with a well-formed 503 that
  // arrives promptly (it never joins the 2 s window).
  const auto t0 = std::chrono::steady_clock::now();
  Response shed;
  ASSERT_TRUE(c.request("POST", "/predict", csv_rows(fx.raw, 9, 2), &shed));
  const auto shed_latency = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(shed.status, 503);
  EXPECT_EQ(shed.header("Retry-After"), "1");
  EXPECT_LT(shed_latency, std::chrono::milliseconds(1500))
      << "shed response waited on the batch window";

  // The admitted requests flush when the window expires, bit-identical.
  std::vector<double> got;
  Response resp;
  ASSERT_TRUE(a.read_response(&resp));
  ASSERT_EQ(resp.status, 200);
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(got[i], fx.expected[i]);
  ASSERT_TRUE(b.read_response(&resp));
  ASSERT_EQ(resp.status, 200);
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(got[i], fx.expected[5 + i]);

  const auto stats = get_stats(&probe);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stat_value(*stats, "requests_shed"), 1.0);
  EXPECT_EQ(stat_value(*stats, "staged_rows"), 0.0);
}

TEST(ServeOverload, SlowReaderPausesReadsAndResumesAtLowWatermark) {
  // Responses larger than out_high_watermark make every flush cross the
  // pause threshold at append time (before any send), so the pause is
  // deterministic regardless of how generously loopback buffers absorb
  // the output afterwards.
  ServerConfig scfg = Fixture::config_with({}, 1024);
  scfg.out_high_watermark = 1024;
  scfg.out_low_watermark = 256;
  Fixture fx(scfg);
  constexpr int kRequests = 20;
  constexpr int kRows = 64;  // ~1.8 KiB response, past the high watermark
  std::string wire;
  const std::string body = csv_rows(fx.raw, 0, kRows);
  for (int i = 0; i < kRequests; ++i) wire += framed_predict(body);

  BlockingClient slow, probe;
  ASSERT_TRUE(slow.connect(fx.server->port()));
  ASSERT_TRUE(probe.connect(fx.server->port()));
  ASSERT_TRUE(slow.send_raw(wire));
  ASSERT_TRUE(wait_for_stat(&probe, "out_buffer_pauses", 1.0));
  {
    const auto stats = get_stats(&probe);
    ASSERT_TRUE(stats.has_value());
    EXPECT_EQ(stat_value(*stats, "out_buffer_closes"), 0.0)
        << "pause/resume backlog must not hard-close";
  }

  // Drain: every response arrives, in order, bit-identical -- pausing
  // reads delayed requests, it never dropped or corrupted one.
  std::vector<double> got;
  Response resp;
  for (int k = 0; k < kRequests; ++k) {
    ASSERT_TRUE(slow.read_response(&resp)) << "response " << k;
    ASSERT_EQ(resp.status, 200) << "response " << k;
    ASSERT_TRUE(parse_predictions(resp.body, &got));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kRows));
    for (int i = 0; i < kRows; ++i) {
      ASSERT_EQ(got[i], fx.expected[i % fx.raw.num_records()]);
    }
  }
  const auto stats = get_stats(&probe);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stat_value(*stats, "out_buffer_pauses"), 1.0);
  EXPECT_GE(stat_value(*stats, "out_buffer_resumes"), 1.0);
  EXPECT_EQ(stat_value(*stats, "out_buffer_closes"), 0.0);
  EXPECT_GE(stat_value(*stats, "out_high_water_bytes"),
            static_cast<double>(scfg.out_high_watermark));
  EXPECT_LE(stat_value(*stats, "out_high_water_bytes"),
            static_cast<double>(scfg.out_max_bytes));
}

TEST(ServeOverload, RunawayPipelinerIsHardClosedAtOutMax) {
  // A peer that pipelines predicts and never reads: its responses are
  // owed before the pause can bite, so the backlog blows through
  // out_max_bytes and the server must hard-close it. The tiny SO_RCVBUF
  // keeps the kernel from absorbing the backlog on the client side.
  ServerConfig scfg = Fixture::config_with({}, 1024);
  scfg.out_high_watermark = 4096;
  scfg.out_low_watermark = 1024;
  scfg.out_max_bytes = 16384;
  // Pin both kernel buffers small: with autotuned defaults the kernel
  // absorbs multi-MiB of backlog and the userland out-buffer never grows.
  scfg.so_sndbuf = 4096;
  Fixture fx(scfg);

  BlockingClient runaway, probe;
  runaway.set_recv_buffer(4096);
  ASSERT_TRUE(runaway.connect(fx.server->port()));
  ASSERT_TRUE(probe.connect(fx.server->port()));

  std::string wire;
  const std::string body = csv_rows(fx.raw, 0, 8);
  for (int i = 0; i < 400; ++i) wire += framed_predict(body);
  // ~144 KiB of responses vs a 16 KiB bound: the close is unavoidable.
  // The send may itself die partway once the server closes; that is the
  // expected outcome, not a failure.
  std::thread sender([&] { (void)runaway.send_raw(wire); });
  EXPECT_TRUE(wait_for_stat(&probe, "out_buffer_closes", 1.0));
  sender.join();

  // The server survived the abuse and keeps serving others.
  Response resp;
  ASSERT_TRUE(probe.request("POST", "/predict", csv_rows(fx.raw, 0, 2),
                            &resp));
  ASSERT_EQ(resp.status, 200);
  std::vector<double> got;
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], fx.expected[0]);
  EXPECT_EQ(got[1], fx.expected[1]);
}

TEST(ServeOverload, IdleAndSlowLorisConnectionsAreReaped) {
  ServerConfig scfg = Fixture::config_with({}, 1024);
  scfg.idle_timeout = std::chrono::milliseconds(100);
  Fixture fx(scfg);
  BlockingClient idle, loris, active;
  ASSERT_TRUE(idle.connect(fx.server->port()));
  ASSERT_TRUE(loris.connect(fx.server->port()));
  ASSERT_TRUE(active.connect(fx.server->port()));
  // The loris sends half a request head and then nothing: no complete
  // request ever forms, so without reaping it would pin its slot forever.
  ASSERT_TRUE(loris.send_raw("POST /predict HTTP/1.1\r\nContent-Le"));

  // The active prober polls /stats throughout (staying busy well past the
  // idle timeout) and must survive the sweep that reaps the other two.
  ASSERT_TRUE(wait_for_stat(&active, "idle_reaped", 2.0));
  Response resp;
  EXPECT_FALSE(idle.read_response(&resp)) << "idle connection not closed";
  EXPECT_FALSE(loris.read_response(&resp)) << "loris connection not closed";
  ASSERT_TRUE(active.request("GET", "/healthz", "", &resp));
  EXPECT_EQ(resp.status, 200);
}

TEST(ServeOverload, ConcurrentReloadIsRefusedWith409Busy) {
  Fixture fx;
  // A FIFO makes the worker's load block deterministically: the first
  // /reload stays in flight until this test writes container bytes into
  // the pipe, so the overlap window is as wide as we need instead of a
  // scheduler race.
  const std::string fifo = "/tmp/booster_serve_reload_fifo.model";
  std::remove(fifo.c_str());
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 4;
  tcfg.max_depth = 3;
  tcfg.loss = "logistic";
  tcfg.num_threads = 1;
  const gbdt::Model v2 = gbdt::Trainer(tcfg).train(fx.binned).model;
  const std::string real_path = "/tmp/booster_serve_reload_busy.model";
  ASSERT_TRUE(gbdt::save_model_checked_file(v2, real_path));
  std::string container_bytes;
  {
    std::ifstream in(real_path, std::ios::binary);
    container_bytes.assign(std::istreambuf_iterator<char>(in), {});
  }

  BlockingClient first, second, probe;
  ASSERT_TRUE(first.connect(fx.server->port()));
  ASSERT_TRUE(second.connect(fx.server->port()));
  ASSERT_TRUE(probe.connect(fx.server->port()));
  ASSERT_TRUE(first.send_raw("POST /reload HTTP/1.1\r\nContent-Length: " +
                             std::to_string(fifo.size()) + "\r\n\r\n" +
                             fifo));
  // The worker is now blocked opening the FIFO; the loop stays live.
  ASSERT_TRUE(wait_for_stat(&probe, "reload_in_flight", 1.0));

  Response resp;
  ASSERT_TRUE(second.request("POST", "/reload", real_path, &resp));
  EXPECT_EQ(resp.status, 409);
  EXPECT_NE(resp.body.find("in flight"), std::string::npos) << resp.body;
  // Predictions keep flowing while the worker is stuck mid-load: the
  // off-loop contract, demonstrated at its worst case.
  std::vector<double> got;
  ASSERT_TRUE(second.request("POST", "/predict", csv_rows(fx.raw, 0, 2),
                             &resp));
  ASSERT_EQ(resp.status, 200);
  ASSERT_TRUE(parse_predictions(resp.body, &got));
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0], fx.expected[0]);
  EXPECT_EQ(got[1], fx.expected[1]);

  // Unblock the worker with real container bytes; the first reload then
  // lands and answers.
  {
    std::ofstream out(fifo, std::ios::binary);
    out.write(container_bytes.data(),
              static_cast<std::streamsize>(container_bytes.size()));
  }
  ASSERT_TRUE(first.read_response(&resp));
  EXPECT_EQ(resp.status, 200) << resp.body;
  EXPECT_EQ(resp.body, "version 2\n");
  const auto stats = get_stats(&probe);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stat_value(*stats, "reloads"), 1.0);
  EXPECT_GE(stat_value(*stats, "reloads_rejected"), 1.0);
  EXPECT_EQ(stat_value(*stats, "reload_in_flight"), 0.0);
  std::remove(fifo.c_str());
  std::remove(real_path.c_str());
}

TEST(ServeOverload, PipelinedHarnessShedsUnderOverloadWithoutErrors) {
  // End-to-end admission control through the load harness: pipelined
  // connections offer far more work than the tight watermarks admit, so
  // some requests shed (503, counted separately) while every admitted one
  // stays bit-identical -- and none errors.
  ServerConfig scfg = Fixture::config_with({}, 1024);
  scfg.shed_requests_watermark = 4;
  scfg.shed_rows_watermark = 4 * 6;
  Fixture fx(scfg);
  LoadConfig lcfg;
  lcfg.port = fx.server->port();
  lcfg.connections = 4;
  lcfg.requests_per_connection = 50;
  lcfg.rows_per_request = 6;
  lcfg.pipeline_depth = 8;
  const LoadResult result = run_closed_loop(lcfg, fx.raw, fx.expected);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_EQ(result.mismatches, 0u);
  EXPECT_GT(result.shed, 0u);
  EXPECT_EQ(result.requests + result.shed,
            static_cast<std::uint64_t>(lcfg.connections) *
                lcfg.requests_per_connection);
  EXPECT_GT(result.requests, 0u);
}

}  // namespace
}  // namespace booster::serve
