// Sharded-training equivalence layer (ISSUE 4 acceptance): ShardedTrainer
// must produce *bit-identical* output to the single-shard Trainer at every
// tested (shards, threads) combination -- tree structure, split decisions,
// leaf weights, gains, raw predictions, and per-tree training losses all
// compare with EXPECT_EQ, no tolerances. The guarantee rests on two
// properties this file also exercises end to end:
//   * quantized-exact histogram accumulation (gbdt::quantize_stat) makes
//     the per-shard Histogram::add merge order-insensitive, and
//   * stable per-shard partitions over contiguous row shards reproduce the
//     single-arena row order when concatenated in shard order.
// Also asserts the per-shard steady-state allocation-free property and the
// emitted StepTrace equality (performance models see the same workload
// regardless of sharding).
#include <gtest/gtest.h>

#include <vector>

#include "gbdt/binning.h"
#include "gbdt/sharded.h"
#include "gbdt/trainer.h"
#include "trace/step_trace.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset random_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "sharded";
  spec.nominal_records = n;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {9, 4};
  spec.missing_rate = 0.12;
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig base_config(std::uint32_t trees = 5) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 5;
  cfg.loss = "logistic";
  cfg.num_threads = 1;
  return cfg;
}

void expect_models_bit_identical(const Model& got, const Model& ref,
                                 const std::string& context) {
  ASSERT_EQ(got.num_trees(), ref.num_trees()) << context;
  for (std::uint32_t t = 0; t < ref.num_trees(); ++t) {
    const Tree& a = got.trees()[t];
    const Tree& b = ref.trees()[t];
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context << " tree " << t;
    for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
      const TreeNode& x = a.node(static_cast<std::int32_t>(id));
      const TreeNode& y = b.node(static_cast<std::int32_t>(id));
      ASSERT_EQ(x.is_leaf, y.is_leaf) << context;
      ASSERT_EQ(x.field, y.field) << context;
      ASSERT_EQ(x.kind, y.kind) << context;
      ASSERT_EQ(x.threshold_bin, y.threshold_bin) << context;
      ASSERT_EQ(x.default_left, y.default_left) << context;
      ASSERT_EQ(x.left, y.left) << context;
      ASSERT_EQ(x.right, y.right) << context;
      // Bit-identical, not approximately equal: quantized-exact merges
      // remove the FP-reduction-order caveat entirely.
      ASSERT_EQ(x.weight, y.weight)
          << context << " tree " << t << " node " << id;
      ASSERT_EQ(x.gain, y.gain) << context << " tree " << t << " node " << id;
    }
  }
}

void expect_results_bit_identical(const TrainResult& got,
                                  const TrainResult& ref,
                                  const BinnedDataset& data,
                                  const std::string& context) {
  expect_models_bit_identical(got.model, ref.model, context);
  ASSERT_EQ(got.tree_stats.size(), ref.tree_stats.size()) << context;
  for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
    EXPECT_EQ(got.tree_stats[t].leaves, ref.tree_stats[t].leaves) << context;
    EXPECT_EQ(got.tree_stats[t].depth, ref.tree_stats[t].depth) << context;
    EXPECT_EQ(got.tree_stats[t].train_loss, ref.tree_stats[t].train_loss)
        << context << " tree " << t;
  }
  EXPECT_EQ(got.avg_leaf_depth, ref.avg_leaf_depth) << context;
  EXPECT_EQ(got.early_stopped, ref.early_stopped) << context;
  for (std::uint64_t r = 0; r < data.num_records(); r += 89) {
    EXPECT_EQ(got.model.predict_raw(data, r), ref.model.predict_raw(data, r))
        << context << " record " << r;
  }
}

TEST(ShardRowRange, PartitionsContiguouslyIncludingUnevenSizes) {
  for (const std::uint64_t n : {1ull, 7ull, 6001ull, 50000ull}) {
    for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
      if (shards > n) continue;
      std::uint64_t expect_begin = 0;
      for (std::uint32_t s = 0; s < shards; ++s) {
        const auto [begin, end] = shard_row_range(n, shards, s);
        EXPECT_EQ(begin, expect_begin) << n << "/" << shards << "/" << s;
        EXPECT_LE(end - begin, n / shards + 1);
        EXPECT_GE(end, begin);
        expect_begin = end;
      }
      EXPECT_EQ(expect_begin, n);
    }
  }
}

TEST(ShardedEquivalence, BitIdenticalAcrossShardAndThreadCounts) {
  // n = 6001 is divisible by none of the tested shard counts, so every
  // sharding here has uneven shard sizes.
  const auto data = random_binned(6001, 17);
  const auto ref = Trainer(base_config()).train(data);

  for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
    for (const unsigned threads : {1u, 2u, 8u}) {
      TrainerConfig cfg = base_config();
      cfg.num_shards = shards;
      cfg.num_threads = threads;
      const auto got = ShardedTrainer(cfg).train(data);
      const std::string context =
          std::to_string(shards) + " shards / " + std::to_string(threads) +
          " threads";
      expect_results_bit_identical(got, ref, data, context);
      EXPECT_EQ(got.hot_path.shards, shards) << context;
      EXPECT_EQ(got.hot_path.threads, threads) << context;
      ASSERT_EQ(got.hot_path.per_shard.size(), shards) << context;
      std::uint64_t rows = 0;
      for (const auto& ss : got.hot_path.per_shard) rows += ss.rows;
      EXPECT_EQ(rows, data.num_records()) << context;
      // K merge adds per merged node histogram, none on the single path.
      EXPECT_EQ(got.hot_path.histogram_merges % shards, 0u) << context;
      EXPECT_GT(got.hot_path.histogram_merges, 0u) << context;
    }
  }
}

TEST(ShardedEquivalence, TrainerDelegatesWhenNumShardsExceedsOne) {
  const auto data = random_binned(4000, 23);
  const auto ref = Trainer(base_config()).train(data);

  TrainerConfig cfg = base_config();
  cfg.num_shards = 3;
  cfg.num_threads = 2;
  const auto via_trainer = Trainer(cfg).train(data);
  expect_results_bit_identical(via_trainer, ref, data, "delegated 3 shards");
  EXPECT_EQ(via_trainer.hot_path.shards, 3u);
  ASSERT_EQ(via_trainer.hot_path.per_shard.size(), 3u);
}

TEST(ShardedEquivalence, EmittedTracesIdenticalToSingleShard) {
  // Perf models must see the *same* workload whether or not training was
  // sharded: event streams compare field by field.
  const auto data = random_binned(3000, 31);
  trace::StepTrace ref_trace;
  trace::WorkloadInfo ref_info;
  const auto ref = Trainer(base_config(3)).train(data, &ref_trace, &ref_info);

  TrainerConfig cfg = base_config(3);
  cfg.num_shards = 4;
  trace::StepTrace trace;
  trace::WorkloadInfo info;
  const auto got = ShardedTrainer(cfg).train(data, &trace, &info);
  expect_results_bit_identical(got, ref, data, "traced 4 shards");

  ASSERT_EQ(trace.events().size(), ref_trace.events().size());
  for (std::size_t i = 0; i < ref_trace.events().size(); ++i) {
    const auto& a = trace.events()[i];
    const auto& b = ref_trace.events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.tree, b.tree) << "event " << i;
    EXPECT_EQ(a.depth, b.depth) << "event " << i;
    EXPECT_EQ(a.records, b.records) << "event " << i;
    EXPECT_EQ(a.fields_touched, b.fields_touched) << "event " << i;
    EXPECT_EQ(a.record_fields, b.record_fields) << "event " << i;
    EXPECT_EQ(a.bins_scanned, b.bins_scanned) << "event " << i;
    EXPECT_EQ(a.histograms, b.histograms) << "event " << i;
    EXPECT_EQ(a.avg_path_length, b.avg_path_length) << "event " << i;
    EXPECT_EQ(a.used_sibling_subtraction, b.used_sibling_subtraction)
        << "event " << i;
  }
  EXPECT_EQ(info.avg_leaf_depth, ref_info.avg_leaf_depth);
  EXPECT_EQ(info.total_bins, ref_info.total_bins);
}

TEST(ShardedEquivalence, LevelByLevelGrowthAlsoBitIdentical) {
  const auto data = random_binned(3000, 41);
  TrainerConfig cfg = base_config(3);
  cfg.growth = GrowthOrder::kLevelByLevel;
  trace::StepTrace ref_trace;
  const auto ref = Trainer(cfg).train(data, &ref_trace);

  TrainerConfig scfg = cfg;
  scfg.num_shards = 2;
  trace::StepTrace trace;
  const auto got = ShardedTrainer(scfg).train(data, &trace);
  expect_results_bit_identical(got, ref, data, "level-by-level 2 shards");
  ASSERT_EQ(trace.events().size(), ref_trace.events().size());
}

TEST(ShardedEquivalence, EarlyStoppingDecisionsIdentical) {
  // Step-6 decisions hinge on train_loss comparisons; quantized loss sums
  // make those bit-identical, so sharded runs stop after the same tree.
  const auto data = random_binned(3000, 47);
  TrainerConfig cfg = base_config(30);
  cfg.early_stop_rel_improvement = 0.02;
  cfg.early_stop_patience = 2;
  const auto ref = Trainer(cfg).train(data);

  TrainerConfig scfg = cfg;
  scfg.num_shards = 4;
  const auto got = ShardedTrainer(scfg).train(data);
  EXPECT_EQ(got.early_stopped, ref.early_stopped);
  ASSERT_EQ(got.model.num_trees(), ref.model.num_trees());
  expect_results_bit_identical(got, ref, data, "early stopping 4 shards");
}

TEST(ShardedEquivalence, SteadyStateIsAllocationFreePerShard) {
  const auto data = random_binned(4000, 53);
  for (const std::uint32_t shards : {2u, 3u}) {
    TrainerConfig cfg = base_config(/*trees=*/3);
    cfg.num_shards = shards;
    const auto short_run = ShardedTrainer(cfg).train(data);
    cfg.num_trees = 12;
    const auto long_run = ShardedTrainer(cfg).train(data);

    // More trees request more node histograms and more merges...
    EXPECT_GT(long_run.hot_path.histogram_acquires,
              short_run.hot_path.histogram_acquires);
    EXPECT_GT(long_run.hot_path.histogram_merges,
              short_run.hot_path.histogram_merges);
    // ...but every shard's pool (and the merged pool, via the aggregate)
    // stops allocating once warm.
    EXPECT_EQ(long_run.hot_path.histogram_allocations,
              short_run.hot_path.histogram_allocations);
    ASSERT_EQ(long_run.hot_path.per_shard.size(), shards);
    for (std::uint32_t s = 0; s < shards; ++s) {
      EXPECT_EQ(long_run.hot_path.per_shard[s].histogram_allocations,
                short_run.hot_path.per_shard[s].histogram_allocations)
          << "shard " << s;
      // Two ping-pong arenas per shard, uint32 row ids, shard-sized.
      EXPECT_EQ(long_run.hot_path.per_shard[s].arena_bytes,
                2 * long_run.hot_path.per_shard[s].rows *
                    sizeof(std::uint32_t))
          << "shard " << s;
    }
    EXPECT_EQ(long_run.hot_path.arena_bytes,
              2 * data.num_records() * sizeof(std::uint32_t));
  }
}

TEST(ShardedEquivalence, SubChunkingKeepsSurplusThreadsBusyBitIdentically) {
  // threads > shards used to idle the surplus (each shard's work was one
  // serial task); per-shard sub-chunking splits every shard task into
  // ceil(threads / shards) contiguous row chunks. Exactness is grouping-
  // independent, so the model must not move by a bit -- and the stats
  // must show the surplus actually engaged.
  const auto data = random_binned(6001, 61);
  const auto ref = Trainer(base_config()).train(data);

  TrainerConfig cfg = base_config();
  cfg.num_shards = 2;
  cfg.num_threads = 8;
  const auto got = ShardedTrainer(cfg).train(data);
  expect_results_bit_identical(got, ref, data, "K=2 T=8 sub-chunked");
  ASSERT_EQ(got.hot_path.per_shard.size(), 2u);
  for (const auto& ss : got.hot_path.per_shard) {
    // ceil(8 / 2) = 4 sub-chunks per shard task.
    EXPECT_EQ(ss.sub_chunks, 4u);
  }
  // No idle-thread regression: shard tasks x sub-chunks covers the pool.
  EXPECT_GE(got.hot_path.shards * got.hot_path.per_shard[0].sub_chunks,
            got.hot_path.threads);

  // threads <= shards keeps whole-shard tasks (sub_chunks == 1).
  TrainerConfig flat = base_config();
  flat.num_shards = 8;
  flat.num_threads = 8;
  const auto even = ShardedTrainer(flat).train(data);
  expect_results_bit_identical(even, ref, data, "K=8 T=8 whole-shard");
  for (const auto& ss : even.hot_path.per_shard) {
    EXPECT_EQ(ss.sub_chunks, 1u);
  }
}

TEST(ShardedEquivalence, SubChunkedRunsStayAllocationFreePerShard) {
  // The allocation-free property must survive sub-chunking: each shard's
  // pool warms up to its sub-chunk partials and then stops allocating.
  const auto data = random_binned(4000, 67);
  TrainerConfig cfg = base_config(/*trees=*/3);
  cfg.num_shards = 2;
  cfg.num_threads = 8;
  const auto short_run = ShardedTrainer(cfg).train(data);
  cfg.num_trees = 12;
  const auto long_run = ShardedTrainer(cfg).train(data);
  EXPECT_GT(long_run.hot_path.histogram_acquires,
            short_run.hot_path.histogram_acquires);
  EXPECT_EQ(long_run.hot_path.histogram_allocations,
            short_run.hot_path.histogram_allocations);
  ASSERT_EQ(long_run.hot_path.per_shard.size(), 2u);
  for (std::uint32_t s = 0; s < 2; ++s) {
    EXPECT_EQ(long_run.hot_path.per_shard[s].histogram_allocations,
              short_run.hot_path.per_shard[s].histogram_allocations)
        << "shard " << s;
  }
}

TEST(ShardedEquivalence, MoreShardsThanRecordsClamps) {
  const auto data = random_binned(11, 59);
  TrainerConfig cfg = base_config(2);
  cfg.num_shards = 64;
  cfg.min_node_records = 2;
  const auto got = ShardedTrainer(cfg).train(data);
  EXPECT_EQ(got.hot_path.shards, 11u);
  const auto ref = Trainer(base_config(2)).train(data);
  expect_results_bit_identical(got, ref, data, "clamped shards");
}

}  // namespace
}  // namespace booster::gbdt
