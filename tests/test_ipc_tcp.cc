// TcpTransport contract suite: real localhost sockets, the epoll Poller,
// the reconnect/backoff machine, session semantics, and the liveness
// layer on top (ISSUE 6 tentpole). The themes:
//   * frames flow bit-exactly both ways across a star of real TCP
//     connections, and the kind/name plumbing round-trips;
//   * a cut link heals: the worker reconnects with its session nonce and
//     the frame stream resumes without loss or reordering;
//   * a *replaced* worker (new nonce on the same rank) is a new session:
//     stale queued frames from the old incarnation never surface;
//   * a half-open peer -- connected but silent, the failure TCP itself
//     never reports -- is declared dead by the ReliableChannel liveness
//     deadline within its documented detection bound, and heartbeats keep
//     a slow-but-alive peer out of that fate;
//   * the ReliableChannel retry protocol survives a seeded fault storm
//     (drop/dup/reorder/truncate/bitflip) over the real TCP transport;
//   * resource edges: oversized length prefixes poison the connection
//     before any allocation, and the bounded send buffer drops whole
//     frames, never partial ones.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "ipc/codec.h"
#include "ipc/faulty.h"
#include "ipc/poller.h"
#include "ipc/reliable.h"
#include "ipc/tcp_transport.h"

namespace booster::ipc {
namespace {

using namespace std::chrono_literals;

std::vector<std::uint8_t> bytes(std::initializer_list<int> vals) {
  std::vector<std::uint8_t> out;
  for (int v : vals) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

/// connect() completes a hello/ack handshake, which needs the coordinator
/// pumping concurrently -- in production the two sides live on different
/// threads (or machines). This helper runs the connect on a thread while
/// driving the coordinator's event loop.
std::unique_ptr<TcpTransport> connect_worker(TcpTransport* rank0,
                                             std::uint32_t world_size,
                                             std::uint32_t rank,
                                             TcpOptions opts = {}) {
  std::unique_ptr<TcpTransport> out;
  std::atomic<bool> done{false};
  std::thread th([&] {
    out = TcpTransport::connect("127.0.0.1", rank0->port(), world_size, rank,
                                opts);
    done.store(true);
  });
  while (!done.load()) rank0->pump(5ms);
  th.join();
  return out;
}

TEST(Poller, DispatchesReadinessByTag) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Poller poller;
  ASSERT_TRUE(poller.add(fds[0], /*tag=*/7, /*want_read=*/true,
                         /*want_write=*/false));

  std::vector<Poller::Event> events;
  poller.wait(10ms, &events);
  EXPECT_TRUE(events.empty()) << "no data yet, nothing may be ready";

  const std::uint8_t byte = 0xAB;
  ASSERT_EQ(::write(fds[1], &byte, 1), 1);
  poller.wait(1000ms, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tag, 7u);
  EXPECT_TRUE(events[0].readable);
  EXPECT_FALSE(events[0].writable);

  // Closing the write end surfaces as readable/hangup, not silence.
  std::uint8_t drain;
  ASSERT_EQ(::read(fds[0], &drain, 1), 1);
  ::close(fds[1]);
  poller.wait(1000ms, &events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_TRUE(events[0].readable || events[0].hangup);

  poller.remove(fds[0]);
  ::close(fds[0]);
}

TEST(TcpTransport, FramesFlowBothWaysAcrossRealSockets) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 3);
  ASSERT_NE(rank0, nullptr);
  ASSERT_NE(rank0->port(), 0);
  EXPECT_STREQ(rank0->kind(), "tcp");
  EXPECT_TRUE(rank0->membership_capable());

  auto w1 = connect_worker(rank0.get(), 3, 1);
  auto w2 = connect_worker(rank0.get(), 3, 2);
  ASSERT_NE(w1, nullptr);
  ASSERT_NE(w2, nullptr);
  EXPECT_FALSE(w1->membership_capable());
  ASSERT_TRUE(rank0->wait_for_world(3, 5000ms));
  EXPECT_TRUE(rank0->peer_connected(1));
  EXPECT_TRUE(rank0->peer_connected(2));

  // Worker -> coordinator, interleaved across peers, in order per peer.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(w1->send(0, bytes({1, i})));
    ASSERT_TRUE(w2->send(0, bytes({2, i, i})));
  }
  std::vector<std::uint8_t> frame;
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(rank0->recv(1, &frame, 2000ms), RecvStatus::kOk);
    EXPECT_EQ(frame, bytes({1, i}));
    ASSERT_EQ(rank0->recv(2, &frame, 2000ms), RecvStatus::kOk);
    EXPECT_EQ(frame, bytes({2, i, i}));
  }

  // Coordinator -> workers, including the empty frame.
  ASSERT_TRUE(rank0->send(1, bytes({9, 9})));
  ASSERT_TRUE(rank0->send(2, {}));
  ASSERT_EQ(w1->recv(0, &frame, 2000ms), RecvStatus::kOk);
  EXPECT_EQ(frame, bytes({9, 9}));
  ASSERT_EQ(w2->recv(0, &frame, 2000ms), RecvStatus::kOk);
  EXPECT_TRUE(frame.empty());

  // (Worker-to-worker sends violate the star and abort loudly -- a
  // protocol bug, not a runtime condition, so no soft-failure path.)
  const auto events = rank0->take_peer_events();
  ASSERT_EQ(events.size(), 2u);
  for (const PeerEvent& ev : events) {
    EXPECT_EQ(ev.kind, PeerEventKind::kJoined);
  }
}

TEST(TcpTransport, ConnectToDeadPortFailsWithinTimeout) {
  // Grab a port that is then closed again: nobody listens there.
  std::uint16_t dead_port = 0;
  {
    auto probe = TcpTransport::listen("127.0.0.1", 0, 2);
    ASSERT_NE(probe, nullptr);
    dead_port = probe->port();
  }
  TcpOptions opts;
  opts.connect_timeout = 300ms;
  const auto start = std::chrono::steady_clock::now();
  auto w = TcpTransport::connect("127.0.0.1", dead_port, 2, 1, opts);
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(w, nullptr);
  EXPECT_LT(elapsed, 5s) << "a dead coordinator must fail fast, not hang";
}

TEST(TcpTransport, WorkerReconnectsAndResumesAfterLinkCut) {
  TcpOptions opts;
  opts.backoff.base = 5ms;
  opts.backoff.cap = 50ms;
  opts.reconnect_window = 5000ms;
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2, opts);
  ASSERT_NE(rank0, nullptr);
  auto w1 = connect_worker(rank0.get(), 2, 1, opts);
  ASSERT_NE(w1, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));
  rank0->take_peer_events();  // drain the join

  ASSERT_TRUE(w1->send(0, bytes({0})));
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(rank0->recv(1, &frame, 2000ms), RecvStatus::kOk);

  // Cut the link, then keep sending: the frames queue, the backoff loop
  // reconnects with the same nonce, and the stream resumes.
  w1->debug_break_connection();
  for (int i = 1; i <= 3; ++i) ASSERT_TRUE(w1->send(0, bytes({i})));
  for (int i = 1; i <= 3; ++i) {
    RecvStatus st = RecvStatus::kTimeout;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      w1->pump(5ms);  // drive the worker's reconnect machine
      st = rank0->recv(1, &frame, 20ms);
      if (st == RecvStatus::kOk) break;
    }
    ASSERT_EQ(st, RecvStatus::kOk) << "frame " << i << " lost in reconnect";
    EXPECT_EQ(frame, bytes({i}));
  }
  EXPECT_GE(rank0->stats().reconnects, 1u);
  bool saw_resume = false;
  for (const PeerEvent& ev : rank0->take_peer_events()) {
    if (ev.kind == PeerEventKind::kResumed) saw_resume = true;
  }
  EXPECT_TRUE(saw_resume);
  // The resumed stream still works coordinator -> worker.
  ASSERT_TRUE(rank0->send(1, bytes({42})));
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  RecvStatus st = RecvStatus::kTimeout;
  while (std::chrono::steady_clock::now() < deadline) {
    st = w1->recv(0, &frame, 20ms);
    if (st == RecvStatus::kOk) break;
  }
  ASSERT_EQ(st, RecvStatus::kOk);
  EXPECT_EQ(frame, bytes({42}));
}

TEST(TcpTransport, NewSessionReplacesOldAndClearsQueuedFrames) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2);
  ASSERT_NE(rank0, nullptr);
  auto w_old = connect_worker(rank0.get(), 2, 1);
  ASSERT_NE(w_old, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));
  const std::uint64_t old_nonce = w_old->session_nonce();
  ASSERT_NE(old_nonce, 0u);

  ASSERT_TRUE(w_old->send(0, bytes({1})));
  ASSERT_TRUE(w_old->send(0, bytes({2})));
  std::vector<std::uint8_t> frame;
  ASSERT_EQ(rank0->recv(1, &frame, 2000ms), RecvStatus::kOk);
  EXPECT_EQ(frame, bytes({1}));
  rank0->pump(50ms);  // ingest the second frame into the rank-1 queue
  w_old.reset();      // the old incarnation dies

  auto w_new = connect_worker(rank0.get(), 2, 1);
  ASSERT_NE(w_new, nullptr);
  EXPECT_NE(w_new->session_nonce(), old_nonce);
  ASSERT_TRUE(w_new->send(0, bytes({7, 7})));

  // The new session's first frame arrives; the old session's queued
  // frame {2} was discarded with its incarnation.
  ASSERT_EQ(rank0->recv(1, &frame, 2000ms), RecvStatus::kOk);
  EXPECT_EQ(frame, bytes({7, 7}));

  bool saw_new_session = false;
  for (const PeerEvent& ev : rank0->take_peer_events()) {
    if (ev.rank == 1 && ev.kind == PeerEventKind::kNewSession) {
      saw_new_session = true;
      EXPECT_EQ(ev.session_nonce, w_new->session_nonce());
    }
  }
  EXPECT_TRUE(saw_new_session);
}

TEST(TcpTransport, OversizedLengthPrefixPoisonsTheConnection) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2);
  ASSERT_NE(rank0, nullptr);

  // A raw client that completes the hello handshake, then declares a
  // frame longer than kMaxFrameBytes. The poisoned length must kill the
  // connection before anything is allocated for it.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(rank0->port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  std::uint8_t hello[16] = {'B', 'T', 'C', 'P'};
  const std::uint32_t rank = 1;
  const std::uint64_t nonce = 0x1122334455667788ull;
  std::memcpy(hello + 4, &rank, 4);    // little-endian host assumed by CI
  std::memcpy(hello + 8, &nonce, 8);
  ASSERT_EQ(::send(fd, hello, sizeof(hello), 0),
            static_cast<ssize_t>(sizeof(hello)));
  std::uint8_t ack = 0;
  {
    // Pump the coordinator until the ack byte arrives (never block on the
    // raw socket: the coordinator only acks while pumped).
    ssize_t got = 0;
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (std::chrono::steady_clock::now() < deadline) {
      rank0->pump(20ms);
      got = ::recv(fd, &ack, 1, MSG_DONTWAIT);
      if (got == 1) break;
    }
    ASSERT_EQ(got, 1);
  }
  EXPECT_EQ(ack, 1) << "fresh session expected";
  EXPECT_TRUE(rank0->peer_connected(1));

  const std::uint8_t poison[4] = {0xff, 0xff, 0xff, 0xff};  // ~4 GiB frame
  ASSERT_EQ(::send(fd, poison, 4, 0), 4);
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (rank0->peer_connected(1) &&
         std::chrono::steady_clock::now() < deadline) {
    rank0->pump(20ms);
  }
  EXPECT_FALSE(rank0->peer_connected(1));
  ::close(fd);
}

TEST(TcpTransport, SendBufferCapDropsWholeFramesNeverPartial) {
  TcpOptions opts;
  opts.send_buffer_cap = 1u << 20;  // 1 MiB of queued frames, tops
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2, opts);
  ASSERT_NE(rank0, nullptr);
  auto w1 = connect_worker(rank0.get(), 2, 1, opts);
  ASSERT_NE(w1, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));

  // The worker never drains, so kernel buffers fill, then the user-space
  // queue hits the cap and whole frames start dropping.
  std::vector<std::uint8_t> big(512 * 1024, 0x5a);
  std::uint32_t accepted = 0;
  for (int i = 0; i < 64; ++i) {
    big[0] = static_cast<std::uint8_t>(i);
    if (rank0->send(1, big)) ++accepted;
    rank0->pump(0ms);
  }
  EXPECT_GT(rank0->frames_dropped(), 0u);
  EXPECT_LT(accepted, 64u);
  EXPECT_GT(accepted, 0u);

  // Every frame that *was* accepted arrives intact and in order -- a drop
  // is a whole frame, never a desynced tail.
  std::vector<std::uint8_t> frame;
  for (std::uint32_t i = 0; i < accepted; ++i) {
    RecvStatus st = RecvStatus::kTimeout;
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (std::chrono::steady_clock::now() < deadline) {
      rank0->pump(0ms);  // keep flushing the queued tail
      st = w1->recv(0, &frame, 20ms);
      if (st != RecvStatus::kTimeout) break;
    }
    ASSERT_EQ(st, RecvStatus::kOk) << "accepted frame " << i << " vanished";
    ASSERT_EQ(frame.size(), big.size());
    EXPECT_EQ(frame[1], 0x5a);
  }
}

TEST(TcpTransport, HalfOpenPeerIsDeclaredDeadWithinTheDeadline) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2);
  ASSERT_NE(rank0, nullptr);
  auto w1 = connect_worker(rank0.get(), 2, 1);
  ASSERT_NE(w1, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));

  // The worker stays connected but never speaks: TCP reports nothing
  // wrong, only the liveness deadline can catch it.
  ReliableConfig cfg;
  cfg.recv_timeout = 25ms;
  cfg.liveness_timeout = 300ms;
  ReliableChannel channel(rank0.get(), cfg);
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel.recv(1, &frame));
  const auto detect = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);

  // The documented bound: liveness_timeout <= detect <=
  // liveness_timeout + recv_timeout (+ scheduling slack).
  EXPECT_GE(detect, 300ms);
  EXPECT_LE(detect, 300ms + 25ms + 600ms);
  EXPECT_EQ(channel.stats().peers_declared_dead, 1u);
  EXPECT_GE(channel.stats().last_detect_ms, 300u);
  EXPECT_LE(channel.stats().last_detect_ms, 925u);
  EXPECT_TRUE(rank0->peer_connected(1)) << "half-open: TCP still looks fine";
}

TEST(TcpTransport, HeartbeatsKeepASlowPeerAlivePastTheDeadline) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2);
  ASSERT_NE(rank0, nullptr);
  auto w1 = connect_worker(rank0.get(), 2, 1);
  ASSERT_NE(w1, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));

  // The worker blocks in recv() with heartbeats on -- alive but with
  // nothing to say, exactly the shape of a long compute phase.
  ReliableConfig wcfg;
  wcfg.recv_timeout = 25ms;
  wcfg.liveness_timeout = 10000ms;
  wcfg.heartbeat_interval = 50ms;
  std::thread worker([&] {
    ReliableChannel channel(w1.get(), wcfg);
    Frame frame;
    ASSERT_TRUE(channel.recv(0, &frame));
    EXPECT_EQ(frame.type, MessageType::kTreeVerdict);
  });

  // Rank 0's deadline (300ms) is far shorter than the silence, but the
  // attempt backstop (40 x 25ms = 1s) is what ends the wait: heartbeats
  // kept refreshing the deadline the whole time.
  ReliableConfig cfg;
  cfg.recv_timeout = 25ms;
  cfg.liveness_timeout = 300ms;
  cfg.max_attempts = 40;
  ReliableChannel channel(rank0.get(), cfg);
  Frame frame;
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(channel.recv(1, &frame));
  const auto waited = std::chrono::steady_clock::now() - start;
  EXPECT_GE(waited, 800ms) << "the liveness deadline must not have fired";
  EXPECT_GT(channel.stats().heartbeats_received, 0u);
  EXPECT_EQ(channel.stats().peers_declared_dead, 1u)
      << "the backstop still counts as a declaration";

  channel.send(1, MessageType::kTreeVerdict, bytes({1, 2, 3}));
  worker.join();
}

TEST(TcpTransport, ReliableChannelSurvivesAFaultStormOverTcp) {
  auto rank0 = TcpTransport::listen("127.0.0.1", 0, 2);
  ASSERT_NE(rank0, nullptr);
  auto w1 = connect_worker(rank0.get(), 2, 1);
  ASSERT_NE(w1, nullptr);
  ASSERT_TRUE(rank0->wait_for_world(2, 5000ms));

  FaultConfig faults;
  faults.drop = 0.08;
  faults.truncate = 0.05;
  faults.duplicate = 0.08;
  faults.reorder = 0.05;
  faults.bitflip = 0.05;
  FaultyTransport faulty0(rank0.get(), faults, /*seed=*/101);
  FaultyTransport faulty1(w1.get(), faults, /*seed=*/202);

  ReliableConfig cfg;
  cfg.recv_timeout = 30ms;
  cfg.liveness_timeout = 5000ms;
  ReliableChannel chan0(&faulty0, cfg);
  ReliableChannel chan1(&faulty1, cfg);

  // Lock-stepped ping-pong, each side on its own thread (as in
  // production: nacks are serviced while the peer blocks in its own
  // recv). Every message must arrive exactly once, in order, bit-exact,
  // through whatever the storm does to the stream.
  constexpr std::uint32_t kMessages = 200;
  std::atomic<bool> all_received{false};
  std::thread echo([&] {
    Frame frame;
    for (std::uint32_t i = 0; i < kMessages; ++i) {
      ASSERT_TRUE(chan1.recv(0, &frame)) << "message " << i;
      EXPECT_EQ(frame.type, MessageType::kSplitDecision);
      EXPECT_EQ(frame.payload, bytes({static_cast<int>(i)}));
      chan1.send(0, MessageType::kShardSummary,
                 bytes({static_cast<int>(i), static_cast<int>(i & 0x7f)}));
    }
    // The final echo can itself be eaten by the storm; keep servicing
    // re-requests (bounded attempt-counted rounds, never a death) until
    // rank 0 confirms it has everything -- otherwise a nack for echo 199
    // would find nobody home and rank 0 would wait out the deadline.
    while (!all_received.load(std::memory_order_acquire)) {
      chan1.recv(0, &frame, /*attempts_override=*/1);
    }
  });
  Frame frame;
  for (std::uint32_t i = 0; i < kMessages; ++i) {
    chan0.send(1, MessageType::kSplitDecision, bytes({static_cast<int>(i)}));
    ASSERT_TRUE(chan0.recv(1, &frame)) << "echo " << i;
    ASSERT_EQ(frame.type, MessageType::kShardSummary);
    ASSERT_EQ(frame.payload,
              bytes({static_cast<int>(i), static_cast<int>(i & 0x7f)}));
  }
  all_received.store(true, std::memory_order_release);
  echo.join();
  EXPECT_GT(faulty0.fault_stats().total() + faulty1.fault_stats().total(), 0u)
      << "the storm must actually have fired for this test to mean anything";
  EXPECT_EQ(chan0.stats().peers_declared_dead, 0u);
  EXPECT_EQ(chan1.stats().peers_declared_dead, 0u);
}

}  // namespace
}  // namespace booster::ipc
