// Cross-process distributed-training equivalence layer (ISSUE 5
// acceptance): gbdt::DistributedTrainer must produce *bit-identical*
// output to the in-process gbdt::Trainer -- tree structure, split
// decisions, leaf weights, gains, raw predictions, per-tree training
// losses, and rank-0's StepTrace, all compared with EXPECT_EQ, no
// tolerances -- at every tested (transport x procs x shards x threads)
// combination. The guarantee composes three properties, each pinned
// elsewhere and here exercised end to end over real transports:
//   * quantized-exact histogram accumulation makes the rank-0 merge (in
//     fixed global shard order) independent of how shards were grouped
//     into ranks and sub-chunks;
//   * the wire format (ipc::HistogramCodec) moves doubles as bit
//     patterns, so nothing changes in transit;
//   * stable per-shard partitions reproduce the single-arena row order.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/distributed.h"
#include "gbdt/sharded.h"
#include "gbdt/trainer.h"
#include "ipc/world.h"
#include "trace/step_trace.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset random_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "distributed";
  spec.nominal_records = n;
  spec.numeric_fields = 5;
  spec.categorical_cardinalities = {9, 4};
  spec.missing_rate = 0.12;
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig base_config(std::uint32_t trees = 4) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 5;
  cfg.loss = "logistic";
  cfg.num_threads = 1;
  return cfg;
}

void expect_models_bit_identical(const Model& got, const Model& ref,
                                 const std::string& context) {
  ASSERT_EQ(got.num_trees(), ref.num_trees()) << context;
  for (std::uint32_t t = 0; t < ref.num_trees(); ++t) {
    const Tree& a = got.trees()[t];
    const Tree& b = ref.trees()[t];
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context << " tree " << t;
    for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
      const TreeNode& x = a.node(static_cast<std::int32_t>(id));
      const TreeNode& y = b.node(static_cast<std::int32_t>(id));
      ASSERT_EQ(x.is_leaf, y.is_leaf) << context;
      ASSERT_EQ(x.field, y.field) << context;
      ASSERT_EQ(x.kind, y.kind) << context;
      ASSERT_EQ(x.threshold_bin, y.threshold_bin) << context;
      ASSERT_EQ(x.default_left, y.default_left) << context;
      ASSERT_EQ(x.left, y.left) << context;
      ASSERT_EQ(x.right, y.right) << context;
      ASSERT_EQ(x.depth, y.depth) << context;
      ASSERT_EQ(x.weight, y.weight)
          << context << " tree " << t << " node " << id;
      ASSERT_EQ(x.gain, y.gain) << context << " tree " << t << " node " << id;
    }
  }
}

void expect_results_bit_identical(const TrainResult& got,
                                  const TrainResult& ref,
                                  const BinnedDataset& data,
                                  const std::string& context) {
  expect_models_bit_identical(got.model, ref.model, context);
  ASSERT_EQ(got.tree_stats.size(), ref.tree_stats.size()) << context;
  for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
    EXPECT_EQ(got.tree_stats[t].leaves, ref.tree_stats[t].leaves) << context;
    EXPECT_EQ(got.tree_stats[t].depth, ref.tree_stats[t].depth) << context;
    EXPECT_EQ(got.tree_stats[t].train_loss, ref.tree_stats[t].train_loss)
        << context << " tree " << t;
  }
  EXPECT_EQ(got.avg_leaf_depth, ref.avg_leaf_depth) << context;
  EXPECT_EQ(got.early_stopped, ref.early_stopped) << context;
  for (std::uint64_t r = 0; r < data.num_records(); r += 89) {
    EXPECT_EQ(got.model.predict_raw(data, r), ref.model.predict_raw(data, r))
        << context << " record " << r;
  }
}

TEST(DistributedEquivalence, BitIdenticalAcrossTransportsProcsShardsThreads) {
  // n = 3001 is divisible by none of the tested shard counts, so shard
  // (and rank) boundaries are uneven everywhere.
  const auto data = random_binned(3001, 17);
  const auto ref = Trainer(base_config()).train(data);

  const ipc::TransportKind kinds[] = {ipc::TransportKind::kLoopback,
                                      ipc::TransportKind::kFile,
                                      ipc::TransportKind::kSocket,
                                      ipc::TransportKind::kTcp};
  for (const auto kind : kinds) {
    for (const std::uint32_t procs : {1u, 2u, 4u}) {
      for (const std::uint32_t shards : {1u, 2u, 3u, 8u}) {
        for (const unsigned threads : {1u, 8u}) {
          DistributedConfig cfg;
          cfg.trainer = base_config();
          cfg.trainer.num_shards = shards;
          cfg.trainer.num_threads = threads;
          ipc::InProcessWorld world(kind, procs);
          const auto got = train_in_process(cfg, world, data);
          const std::string context =
              std::string(ipc::transport_kind_name(kind)) + " / " +
              std::to_string(procs) + " procs / " + std::to_string(shards) +
              " shards / " + std::to_string(threads) + " threads";
          expect_results_bit_identical(got, ref, data, context);
          EXPECT_EQ(got.hot_path.shards, shards) << context;
          EXPECT_EQ(got.hot_path.threads, threads) << context;
        }
      }
    }
  }
}

TEST(DistributedEquivalence, EveryRankReturnsTheSameModel) {
  const auto data = random_binned(2001, 23);
  const auto ref = Trainer(base_config(3)).train(data);

  DistributedConfig cfg;
  cfg.trainer = base_config(3);
  cfg.trainer.num_shards = 5;
  cfg.trainer.num_threads = 2;
  ipc::InProcessWorld world(ipc::TransportKind::kLoopback, 3);
  std::vector<TrainResult> workers;
  std::vector<DistributedStats> stats;
  const auto rank0 = train_in_process(cfg, world, data, nullptr, nullptr,
                                      &workers, &stats);
  expect_results_bit_identical(rank0, ref, data, "rank 0");
  ASSERT_EQ(workers.size(), 2u);
  for (std::size_t w = 0; w < workers.size(); ++w) {
    const std::string context = "worker rank " + std::to_string(w + 1);
    expect_models_bit_identical(workers[w].model, ref.model, context);
    ASSERT_EQ(workers[w].tree_stats.size(), ref.tree_stats.size()) << context;
    for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
      EXPECT_EQ(workers[w].tree_stats[t].train_loss,
                ref.tree_stats[t].train_loss)
          << context;
    }
    EXPECT_EQ(workers[w].avg_leaf_depth, ref.avg_leaf_depth) << context;
    EXPECT_EQ(workers[w].early_stopped, ref.early_stopped) << context;
  }
  // Shard partition across ranks: 5 shards over 3 ranks, contiguous.
  ASSERT_EQ(stats.size(), 3u);
  std::uint32_t total_local = 0;
  for (const auto& s : stats) total_local += s.shards_local;
  EXPECT_EQ(total_local, 5u);
  EXPECT_EQ(stats[0].dead_workers, 0u);
  EXPECT_GT(stats[0].channel.messages_received, 0u);
  EXPECT_GT(stats[1].channel.messages_sent, 0u);
}

TEST(DistributedEquivalence, RankZeroTraceMatchesTrainer) {
  const auto data = random_binned(2001, 31);
  trace::StepTrace ref_trace;
  const auto ref = Trainer(base_config(3)).train(data, &ref_trace);

  DistributedConfig cfg;
  cfg.trainer = base_config(3);
  cfg.trainer.num_shards = 4;
  ipc::InProcessWorld world(ipc::TransportKind::kLoopback, 2);
  trace::StepTrace trace;
  const auto got = train_in_process(cfg, world, data, &trace);
  expect_results_bit_identical(got, ref, data, "traced 2 procs");

  ASSERT_EQ(trace.events().size(), ref_trace.events().size());
  for (std::size_t i = 0; i < ref_trace.events().size(); ++i) {
    const auto& a = trace.events()[i];
    const auto& b = ref_trace.events()[i];
    EXPECT_EQ(a.kind, b.kind) << "event " << i;
    EXPECT_EQ(a.tree, b.tree) << "event " << i;
    EXPECT_EQ(a.depth, b.depth) << "event " << i;
    EXPECT_EQ(a.records, b.records) << "event " << i;
    EXPECT_EQ(a.fields_touched, b.fields_touched) << "event " << i;
    EXPECT_EQ(a.record_fields, b.record_fields) << "event " << i;
    EXPECT_EQ(a.bins_scanned, b.bins_scanned) << "event " << i;
    EXPECT_EQ(a.histograms, b.histograms) << "event " << i;
    EXPECT_EQ(a.avg_path_length, b.avg_path_length) << "event " << i;
    EXPECT_EQ(a.used_sibling_subtraction, b.used_sibling_subtraction)
        << "event " << i;
  }
}

TEST(DistributedEquivalence, MoreRanksThanShardsLeavesSurplusRanksIdle) {
  const auto data = random_binned(1501, 41);
  const auto ref = Trainer(base_config(3)).train(data);

  DistributedConfig cfg;
  cfg.trainer = base_config(3);
  cfg.trainer.num_shards = 2;
  ipc::InProcessWorld world(ipc::TransportKind::kLoopback, 4);
  std::vector<TrainResult> workers;
  std::vector<DistributedStats> stats;
  const auto got = train_in_process(cfg, world, data, nullptr, nullptr,
                                    &workers, &stats);
  expect_results_bit_identical(got, ref, data, "4 procs / 2 shards");
  // Shardless ranks still follow the tree/verdict stream to the same model.
  ASSERT_EQ(workers.size(), 3u);
  for (const auto& w : workers) {
    expect_models_bit_identical(w.model, ref.model, "idle-rank model");
  }
  std::uint32_t ranks_with_shards = 0;
  for (const auto& s : stats) ranks_with_shards += s.shards_local > 0;
  EXPECT_EQ(ranks_with_shards, 2u);
}

TEST(DistributedEquivalence, EarlyStoppingDecisionsPropagate) {
  const auto data = random_binned(2001, 47);
  TrainerConfig tcfg = base_config(30);
  tcfg.early_stop_rel_improvement = 0.02;
  tcfg.early_stop_patience = 2;
  const auto ref = Trainer(tcfg).train(data);

  DistributedConfig cfg;
  cfg.trainer = tcfg;
  cfg.trainer.num_shards = 3;
  ipc::InProcessWorld world(ipc::TransportKind::kLoopback, 2);
  std::vector<TrainResult> workers;
  const auto got =
      train_in_process(cfg, world, data, nullptr, nullptr, &workers);
  EXPECT_EQ(got.early_stopped, ref.early_stopped);
  ASSERT_EQ(got.model.num_trees(), ref.model.num_trees());
  expect_results_bit_identical(got, ref, data, "early stop 2 procs");
  ASSERT_EQ(workers.size(), 1u);
  EXPECT_EQ(workers[0].early_stopped, ref.early_stopped);
  EXPECT_EQ(workers[0].model.num_trees(), ref.model.num_trees());
}

TEST(DistributedEquivalence, ShardedTrainerDelegatesToSingleRankWorld) {
  const auto data = random_binned(1501, 53);
  const auto ref = Trainer(base_config(3)).train(data);
  TrainerConfig cfg = base_config(3);
  cfg.num_shards = 3;
  const auto sharded = ShardedTrainer(cfg).train(data);
  expect_results_bit_identical(sharded, ref, data, "sharded 3");

  DistributedConfig dcfg;
  dcfg.trainer = cfg;
  DistributedTrainer solo(dcfg, nullptr);
  const auto got = solo.train(data);
  expect_results_bit_identical(got, sharded, data, "single-rank world");
  EXPECT_EQ(solo.stats().world_size, 1u);
  EXPECT_EQ(solo.stats().shards_local, 3u);
}

}  // namespace
}  // namespace booster::gbdt
