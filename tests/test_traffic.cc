#include "perf/traffic.h"

#include <gtest/gtest.h>

#include <cmath>

#include "perf/host.h"

namespace booster::perf {
namespace {

TEST(RowBytes, DensePairPacking) {
  EXPECT_DOUBLE_EQ(row_bytes_per_record(28, true), 32.0);
  EXPECT_DOUBLE_EQ(row_bytes_per_record(28, false), 64.0);
}

TEST(RowBytes, MultiBlockRecords) {
  EXPECT_DOUBLE_EQ(row_bytes_per_record(115, true), 128.0);
  EXPECT_DOUBLE_EQ(row_bytes_per_record(65, false), 128.0);
}

TEST(RowBytes, DensityInterpolation) {
  // density 1 -> 32 B (pair always useful), density 0 -> 64 B.
  EXPECT_DOUBLE_EQ(row_bytes_per_record_at_density(28, 1.0), 32.0);
  EXPECT_DOUBLE_EQ(row_bytes_per_record_at_density(28, 0.0), 64.0);
  const double mid = row_bytes_per_record_at_density(28, 0.5);
  EXPECT_GT(mid, 32.0);
  EXPECT_LT(mid, 64.0);
}

TEST(RowBytes, DensityIgnoredForLargeRecords) {
  EXPECT_DOUBLE_EQ(row_bytes_per_record_at_density(115, 0.1), 128.0);
  EXPECT_DOUBLE_EQ(row_bytes_per_record_at_density(40, 0.9), 64.0);
}

TEST(TouchedBlocks, DenseSelectionIsCompact) {
  // Selecting everything: one block per 64 wanted elements.
  EXPECT_NEAR(expected_touched_blocks(6400, 1.0, 64.0), 100.0, 1.0);
}

TEST(TouchedBlocks, SparseSelectionCostsOneBlockEach) {
  // Density 1/1000: essentially every wanted element is its own block.
  const double blocks = expected_touched_blocks(100, 0.001, 64.0);
  EXPECT_GT(blocks, 90.0);
  EXPECT_LE(blocks, 100.0);
}

TEST(TouchedBlocks, MonotonicInDensity) {
  double prev = 1e18;
  for (const double density : {0.01, 0.05, 0.25, 0.5, 1.0}) {
    const double blocks = expected_touched_blocks(1000, density, 64.0);
    EXPECT_LE(blocks, prev) << "higher density must touch fewer blocks";
    prev = blocks;
  }
}

TEST(TouchedBlocks, ZeroWantedIsZero) {
  EXPECT_DOUBLE_EQ(expected_touched_blocks(0, 0.5, 64.0), 0.0);
}

TEST(HistogramBytes, RootStreamsWithoutPointers) {
  trace::StepEvent e;
  e.kind = trace::StepKind::kHistogram;
  e.depth = 0;
  const double root = histogram_bytes(e, 1000.0, 28, 1.0);
  EXPECT_DOUBLE_EQ(root, 1000.0 * (32.0 + 8.0));
  e.depth = 2;
  const double deep = histogram_bytes(e, 1000.0, 28, 0.25);
  EXPECT_GT(deep, root);  // sparser fetch + pointer stream
}

TEST(PartitionBytes, ColumnBeatsRowForWideRecords) {
  // IoT-like 115-byte records: the column format must save bandwidth at
  // any density (the paper's motivating case).
  for (const double density : {1.0, 0.5, 0.1, 0.01}) {
    const double col = partition_bytes_column(1000.0, density);
    const double row = partition_bytes_row(1000.0, 115, density == 1.0);
    EXPECT_LT(col, row) << "density " << density;
  }
}

TEST(PartitionBytes, ColumnDenseIsNearOneBytePerRecord) {
  const double col = partition_bytes_column(64000.0, 1.0);
  // 1 B column + 8 B pointers per record.
  EXPECT_NEAR(col / 64000.0, 9.0, 0.5);
}

TEST(TraversalBytes, ColumnScalesWithRelevantFields) {
  trace::StepEvent e;
  e.fields_touched = 10;
  const double b10 = traversal_bytes_column(e, 1000.0);
  e.fields_touched = 20;
  const double b20 = traversal_bytes_column(e, 1000.0);
  EXPECT_DOUBLE_EQ(b20 - b10, 1000.0 * 10.0);
  // Both include the 16 B/record gradient read+write.
  EXPECT_DOUBLE_EQ(b10, 1000.0 * (10.0 + 16.0));
}

TEST(TraversalBytes, RowFetchesWholeRecord) {
  EXPECT_DOUBLE_EQ(traversal_bytes_row(1000.0, 115), 1000.0 * (128.0 + 16.0));
}

TEST(HostSplit, ProportionalToBinsAndNodes) {
  trace::StepTrace t;
  trace::StepEvent e;
  e.kind = trace::StepKind::kSplitSelect;
  e.bins_scanned = 1000;
  t.add(e);
  HostParams params;
  const double one = host_split_seconds(t, params);
  t.add(e);
  const double two = host_split_seconds(t, params);
  EXPECT_NEAR(two, 2.0 * one, 1e-12);
  // Repeat factor multiplies host time.
  t.set_repeat(3.0);
  EXPECT_NEAR(host_split_seconds(t, params), 6.0 * one, 1e-12);
}

TEST(HostSplit, IgnoresNonSplitEvents) {
  trace::StepTrace t;
  trace::StepEvent e;
  e.kind = trace::StepKind::kHistogram;
  e.records = 1000000;
  t.add(e);
  EXPECT_DOUBLE_EQ(host_split_seconds(t, {}), 0.0);
}

TEST(EffectiveBandwidth, AnchorsPinTheInterpolation) {
  memsim::BandwidthProfile bw;
  bw.streaming = 400e9;
  bw.strided_gather = 380e9;
  bw.random = 266e9;
  bw.peak = 403e9;
  // Defaults: flat to stride 8, gather rate at 16, random by 64.
  EXPECT_DOUBLE_EQ(effective_bandwidth(bw, 1.0), bw.streaming);
  EXPECT_DOUBLE_EQ(effective_bandwidth(bw, 1.0 / 8.0), bw.streaming);
  EXPECT_DOUBLE_EQ(effective_bandwidth(bw, 1.0 / 16.0), bw.strided_gather);
  EXPECT_DOUBLE_EQ(effective_bandwidth(bw, 1.0 / 64.0), bw.random);
  EXPECT_DOUBLE_EQ(effective_bandwidth(bw, 1.0 / 4096.0), bw.random);
}

TEST(EffectiveBandwidth, MonotoneNonIncreasingInStride) {
  memsim::BandwidthProfile bw;
  bw.streaming = 400e9;
  bw.strided_gather = 380e9;
  bw.random = 266e9;
  double prev = 1e18;
  for (double stride = 1.0; stride <= 256.0; stride *= 1.5) {
    const double got = effective_bandwidth(bw, 1.0 / stride);
    EXPECT_LE(got, prev + 1e-3) << "stride " << stride;
    prev = got;
  }
}

TEST(EffectiveBandwidth, CalibratedAnchorsMoveTheDecay) {
  // A profile whose decay was measured to start later and finish later
  // must report higher bandwidth in the mid-stride range than the default
  // anchors -- the knob the probe's stride sweep calibrates.
  memsim::BandwidthProfile late = {/*streaming=*/400e9,
                                   /*strided_gather=*/380e9,
                                   /*random=*/266e9,
                                   /*peak=*/403e9,
                                   /*flat_stride=*/12.0,
                                   /*cal_stride=*/24.0,
                                   /*random_stride=*/96.0};
  memsim::BandwidthProfile def = late;
  def.flat_stride = 8.0;
  def.cal_stride = 16.0;
  def.random_stride = 64.0;
  EXPECT_DOUBLE_EQ(effective_bandwidth(late, 1.0 / 12.0), late.streaming);
  EXPECT_LT(effective_bandwidth(def, 1.0 / 12.0), late.streaming);
  for (const double stride : {20.0, 32.0, 48.0}) {
    EXPECT_GT(effective_bandwidth(late, 1.0 / stride),
              effective_bandwidth(def, 1.0 / stride))
        << "stride " << stride;
  }
}

TEST(EffectiveBandwidth, DegenerateAnchorOrderingIsRepaired) {
  // Anchors out of order (a toy config where every stride measures alike)
  // must not produce NaNs or reversed interpolation.
  memsim::BandwidthProfile bw;
  bw.streaming = 100e9;
  bw.strided_gather = 90e9;
  bw.random = 80e9;
  bw.flat_stride = 32.0;
  bw.cal_stride = 16.0;  // below flat_stride on purpose
  bw.random_stride = 8.0;
  for (double stride = 1.0; stride <= 128.0; stride *= 2.0) {
    const double got = effective_bandwidth(bw, 1.0 / stride);
    EXPECT_TRUE(std::isfinite(got)) << "stride " << stride;
    EXPECT_GE(got, bw.random * 0.99);
    EXPECT_LE(got, bw.streaming * 1.01);
  }
}

}  // namespace
}  // namespace booster::perf
