// Fault-injection layer for the distributed trainer (ISSUE 5 satellite):
// drives the full training protocol through every injected fault class --
// drop, truncation, duplication, reordering, bit flips, and outright
// worker death -- and proves the result is *still* bit-identical to the
// in-process gbdt::Trainer (EXPECT_EQ, no tolerances): the retry protocol
// may resend, re-request, and re-execute, but it may never change a bit.
// Unrecoverable situations (a dead worker with shard adoption disabled,
// a worker cut off from its coordinator) must fail loudly -- death tests
// pin the abort -- because the one unacceptable outcome is silent
// divergence.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/distributed.h"
#include "gbdt/trainer.h"
#include "ipc/faulty.h"
#include "ipc/loopback.h"
#include "ipc/world.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

BinnedDataset random_binned(std::uint64_t n, std::uint64_t seed) {
  workloads::DatasetSpec spec;
  spec.name = "faults";
  spec.nominal_records = n;
  spec.numeric_fields = 4;
  spec.categorical_cardinalities = {7};
  spec.missing_rate = 0.1;
  spec.loss = "logistic";
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig base_config(std::uint32_t trees = 3) {
  TrainerConfig cfg;
  cfg.num_trees = trees;
  cfg.max_depth = 4;
  cfg.loss = "logistic";
  cfg.num_threads = 1;
  return cfg;
}

/// Short per-attempt timeouts keep injected-loss recovery fast on the CI
/// runner; the generous attempt budget keeps convergence certain.
ipc::ReliableConfig fast_channel() {
  ipc::ReliableConfig cfg;
  cfg.recv_timeout = std::chrono::milliseconds(15);
  cfg.max_attempts = 400;
  return cfg;
}

void expect_bit_identical(const TrainResult& got, const TrainResult& ref,
                          const BinnedDataset& data,
                          const std::string& context) {
  ASSERT_EQ(got.model.num_trees(), ref.model.num_trees()) << context;
  for (std::uint32_t t = 0; t < ref.model.num_trees(); ++t) {
    const Tree& a = got.model.trees()[t];
    const Tree& b = ref.model.trees()[t];
    ASSERT_EQ(a.num_nodes(), b.num_nodes()) << context;
    for (std::uint32_t id = 0; id < a.num_nodes(); ++id) {
      const TreeNode& x = a.node(static_cast<std::int32_t>(id));
      const TreeNode& y = b.node(static_cast<std::int32_t>(id));
      ASSERT_EQ(x.is_leaf, y.is_leaf) << context;
      ASSERT_EQ(x.field, y.field) << context;
      ASSERT_EQ(x.threshold_bin, y.threshold_bin) << context;
      ASSERT_EQ(x.left, y.left) << context;
      ASSERT_EQ(x.right, y.right) << context;
      ASSERT_EQ(x.weight, y.weight) << context << " node " << id;
      ASSERT_EQ(x.gain, y.gain) << context << " node " << id;
    }
  }
  ASSERT_EQ(got.tree_stats.size(), ref.tree_stats.size()) << context;
  for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
    EXPECT_EQ(got.tree_stats[t].train_loss, ref.tree_stats[t].train_loss)
        << context;
  }
  for (std::uint64_t r = 0; r < data.num_records(); r += 97) {
    EXPECT_EQ(got.model.predict_raw(data, r), ref.model.predict_raw(data, r))
        << context << " record " << r;
  }
}

/// Runs a faulty 2-rank loopback world and returns (rank-0 result, summed
/// channel stats, summed injected-fault stats).
struct FaultRun {
  TrainResult result;
  ipc::ReliableStats channel;
  ipc::FaultStats injected;
};

FaultRun run_with_faults(const BinnedDataset& data, ipc::FaultConfig faults,
                         std::uint64_t seed, std::uint32_t shards = 3,
                         std::uint32_t procs = 2) {
  DistributedConfig cfg;
  cfg.trainer = base_config();
  cfg.trainer.num_shards = shards;
  cfg.trainer.num_threads = 2;
  cfg.channel = fast_channel();
  ipc::InProcessWorld world(ipc::TransportKind::kLoopback, procs, faults,
                            seed);
  std::vector<DistributedStats> stats;
  TrainResult result =
      train_in_process(cfg, world, data, nullptr, nullptr, nullptr, &stats);
  FaultRun run{std::move(result), {}, {}};
  for (const auto& s : stats) {
    run.channel.retransmits += s.channel.retransmits;
    run.channel.nacks_sent += s.channel.nacks_sent;
    run.channel.duplicates_dropped += s.channel.duplicates_dropped;
    run.channel.corrupt_frames += s.channel.corrupt_frames;
    run.channel.parked_frames += s.channel.parked_frames;
    run.channel.messages_received += s.channel.messages_received;
  }
  for (std::uint32_t r = 0; r < procs; ++r) {
    const ipc::FaultStats* fs = world.fault_stats(r);
    EXPECT_NE(fs, nullptr) << "fault world must wrap every endpoint";
    if (fs == nullptr) continue;
    run.injected.dropped += fs->dropped;
    run.injected.truncated += fs->truncated;
    run.injected.duplicated += fs->duplicated;
    run.injected.reordered += fs->reordered;
    run.injected.bitflipped += fs->bitflipped;
  }
  return run;
}

class DistributedFaults : public ::testing::Test {
 protected:
  void SetUp() override {
    data_ = random_binned(2001, 71);
    ref_ = Trainer(base_config()).train(data_);
  }

  BinnedDataset data_;
  TrainResult ref_{.model = Model(0.0, nullptr)};
};

TEST_F(DistributedFaults, SurvivesDroppedMessagesBitIdentically) {
  const auto run = run_with_faults(data_, {.drop = 0.12}, 1001);
  expect_bit_identical(run.result, ref_, data_, "drop faults");
  EXPECT_GT(run.injected.dropped, 0u);
  // Every loss was healed by a timeout-driven re-request.
  EXPECT_GT(run.channel.retransmits, 0u);
  EXPECT_GT(run.channel.nacks_sent, 0u);
}

TEST_F(DistributedFaults, SurvivesTruncatedMessagesBitIdentically) {
  const auto run = run_with_faults(data_, {.truncate = 0.12}, 1003);
  expect_bit_identical(run.result, ref_, data_, "truncate faults");
  EXPECT_GT(run.injected.truncated, 0u);
  // Truncated frames are detected as corrupt and re-requested.
  EXPECT_GT(run.channel.corrupt_frames, 0u);
  EXPECT_GT(run.channel.retransmits, 0u);
}

TEST_F(DistributedFaults, SurvivesDuplicatedMessagesBitIdentically) {
  const auto run = run_with_faults(data_, {.duplicate = 0.2}, 1005);
  expect_bit_identical(run.result, ref_, data_, "duplicate faults");
  EXPECT_GT(run.injected.duplicated, 0u);
  EXPECT_GT(run.channel.duplicates_dropped, 0u);
}

TEST_F(DistributedFaults, SurvivesReorderedMessagesBitIdentically) {
  const auto run = run_with_faults(data_, {.reorder = 0.2}, 1007);
  expect_bit_identical(run.result, ref_, data_, "reorder faults");
  EXPECT_GT(run.injected.reordered, 0u);
  // Out-of-order frames were parked until their gap filled.
  EXPECT_GT(run.channel.parked_frames, 0u);
}

TEST_F(DistributedFaults, SurvivesBitFlippedMessagesBitIdentically) {
  const auto run = run_with_faults(data_, {.bitflip = 0.12}, 1009);
  expect_bit_identical(run.result, ref_, data_, "bit-flip faults");
  EXPECT_GT(run.injected.bitflipped, 0u);
  // A flip anywhere -- header or payload -- fails the frame checksum.
  EXPECT_GT(run.channel.corrupt_frames, 0u);
  EXPECT_GT(run.channel.retransmits, 0u);
}

TEST_F(DistributedFaults, SurvivesAllFaultClassesAtOnceBitIdentically) {
  const ipc::FaultConfig storm{.drop = 0.06,
                               .truncate = 0.06,
                               .duplicate = 0.06,
                               .reorder = 0.06,
                               .bitflip = 0.06};
  const auto run = run_with_faults(data_, storm, 1011, /*shards=*/8,
                                   /*procs=*/4);
  expect_bit_identical(run.result, ref_, data_, "fault storm");
  EXPECT_GT(run.injected.total(), 0u);
}

TEST_F(DistributedFaults, AdoptsShardsOfAWorkerThatNeverAppears) {
  // World of 2 ranks, but the worker never starts: rank 0 exhausts its
  // attempt budget waiting for the root histograms, declares the worker
  // dead, re-executes its shards locally, and finishes -- bit-identically.
  ipc::LoopbackHub hub(2);
  auto endpoint = hub.endpoint(0);
  DistributedConfig cfg;
  cfg.trainer = base_config();
  cfg.trainer.num_shards = 3;
  cfg.channel.recv_timeout = std::chrono::milliseconds(5);
  cfg.channel.max_attempts = 3;
  DistributedTrainer trainer(cfg, endpoint.get());
  const auto got = trainer.train(data_);
  expect_bit_identical(got, ref_, data_, "absent worker");
  EXPECT_EQ(trainer.stats().dead_workers, 1u);
  EXPECT_GT(trainer.stats().shards_adopted, 0u);
  EXPECT_EQ(trainer.stats().shards_local + trainer.stats().shards_adopted,
            3u);
}

/// Forwards faithfully until `sends_before_death` frames went out, then
/// silently swallows every further send while receiving normally: a
/// worker whose outbound path dies mid-training. Deterministic, so the
/// death lands at the same protocol point every run.
class DyingTransport final : public ipc::Transport {
 public:
  DyingTransport(ipc::Transport* inner, std::uint64_t sends_before_death)
      : inner_(inner), budget_(sends_before_death) {}

  std::uint32_t world_size() const override { return inner_->world_size(); }
  std::uint32_t rank() const override { return inner_->rank(); }
  const char* kind() const override { return "dying"; }

  bool send(std::uint32_t dst, std::span<const std::uint8_t> frame) override {
    if (budget_ == 0) return true;  // outbound path dead; pretend success
    --budget_;
    return inner_->send(dst, frame);
  }

  ipc::RecvStatus recv(std::uint32_t src, std::vector<std::uint8_t>* frame,
                       std::chrono::milliseconds timeout) override {
    return inner_->recv(src, frame, timeout);
  }

 private:
  ipc::Transport* inner_;
  std::uint64_t budget_;
};

TEST_F(DistributedFaults, AdoptsShardsOfAWorkerDyingMidTraining) {
  ipc::LoopbackHub hub(2);
  DistributedConfig cfg;
  cfg.trainer = base_config();
  cfg.trainer.num_shards = 4;
  cfg.channel.recv_timeout = std::chrono::milliseconds(5);
  cfg.channel.max_attempts = 4;

  auto ep0 = hub.endpoint(0);
  auto ep1 = hub.endpoint(1);
  // Enough budget to get through tree 0 and die somewhere inside a later
  // tree's histogram stream; the exact point is deterministic.
  DyingTransport dying(ep1.get(), 30);

  TrainResult rank0{.model = Model(0.0, nullptr)};
  DistributedStats stats0;
  std::thread worker([&] {
    // The zombie stays patient: rank 0's channel knobs are tuned for fast
    // death *detection*, while the worker must ride out rank 0's adoption
    // replay without giving up on its coordinator.
    DistributedConfig wcfg = cfg;
    wcfg.channel = ipc::ReliableConfig{};
    DistributedTrainer w(wcfg, &dying);
    // The zombie worker keeps receiving rank 0's broadcasts and exits
    // cleanly; its results are simply no longer used.
    (void)w.train(data_);
  });
  {
    DistributedTrainer driver(cfg, ep0.get());
    rank0 = driver.train(data_);
    stats0 = driver.stats();
  }
  worker.join();

  expect_bit_identical(rank0, ref_, data_, "mid-training death");
  EXPECT_EQ(stats0.dead_workers, 1u);
  EXPECT_EQ(stats0.shards_local + stats0.shards_adopted, 4u);
}

TEST_F(DistributedFaults, UnrecoverableBlackoutFailsLoudly) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  // Total blackout with shard adoption disabled: nothing can converge,
  // and the run must abort with a diagnostic -- never return a silently
  // divergent model.
  ASSERT_DEATH(
      {
        const auto data = random_binned(501, 73);
        DistributedConfig cfg;
        cfg.trainer = base_config(1);
        cfg.trainer.num_shards = 2;
        cfg.channel.recv_timeout = std::chrono::milliseconds(2);
        cfg.channel.max_attempts = 2;
        cfg.adopt_dead_workers = false;
        ipc::FaultConfig blackout;
        blackout.drop = 1.0;
        ipc::InProcessWorld world(ipc::TransportKind::kLoopback, 2, blackout,
                                  9);
        (void)train_in_process(cfg, world, data);
      },
      "declared dead|lost its coordinator");
}

}  // namespace
}  // namespace booster::gbdt
