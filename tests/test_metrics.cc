#include "gbdt/metrics.h"

#include <gtest/gtest.h>

#include "gbdt/trainer.h"

namespace booster::gbdt {
namespace {

/// Dataset whose single numeric field *is* the score: record r has value r.
BinnedDataset ladder_data(const std::vector<float>& labels) {
  Dataset d;
  d.add_numeric_field("x");
  d.resize(labels.size());
  for (std::size_t r = 0; r < labels.size(); ++r) {
    d.set_numeric(0, r, static_cast<float>(r));
    d.set_label(r, labels[r]);
  }
  return Binner().bin(d);
}

/// Model with one stump: predict high for bins above `threshold`.
Model stump_model(std::uint16_t threshold, const std::string& loss) {
  Model m(0.0, make_loss(loss));
  Tree t;
  SplitInfo s;
  s.field = 0;
  s.kind = PredicateKind::kNumericLE;
  s.threshold_bin = threshold;
  const auto [l, r] = t.split_leaf(t.root(), s);
  t.set_leaf_weight(l, -2.0);
  t.set_leaf_weight(r, 2.0);
  m.add_tree(std::move(t));
  return m;
}

TEST(Auc, PerfectSeparationIsOne) {
  // Labels: low half 0, high half 1; stump at the midpoint.
  std::vector<float> labels(10, 0.0f);
  for (int i = 5; i < 10; ++i) labels[i] = 1.0f;
  const auto data = ladder_data(labels);
  const auto model = stump_model(5, "logistic");
  EXPECT_DOUBLE_EQ(auc(model, data), 1.0);
}

TEST(Auc, InvertedSeparationIsZero) {
  std::vector<float> labels(10, 1.0f);
  for (int i = 5; i < 10; ++i) labels[i] = 0.0f;
  const auto data = ladder_data(labels);
  const auto model = stump_model(5, "logistic");
  EXPECT_DOUBLE_EQ(auc(model, data), 0.0);
}

TEST(Auc, ConstantScoresAreChance) {
  std::vector<float> labels{0.0f, 1.0f, 0.0f, 1.0f};
  const auto data = ladder_data(labels);
  const Model constant(0.0, make_loss("logistic"));  // no trees
  EXPECT_DOUBLE_EQ(auc(constant, data), 0.5);
}

TEST(Auc, SingleClassIsChance) {
  std::vector<float> labels(6, 1.0f);
  const auto data = ladder_data(labels);
  const auto model = stump_model(3, "logistic");
  EXPECT_DOUBLE_EQ(auc(model, data), 0.5);
}

TEST(Rmse, ZeroForExactModel) {
  // Model predicting base score equal to the constant label.
  std::vector<float> labels(8, 1.5f);
  const auto data = ladder_data(labels);
  const Model m(1.5, make_loss("squared"));
  EXPECT_NEAR(rmse(m, data), 0.0, 1e-9);
}

TEST(Rmse, KnownError) {
  std::vector<float> labels(4, 0.0f);
  const auto data = ladder_data(labels);
  const Model m(2.0, make_loss("squared"));  // constant prediction 2
  EXPECT_DOUBLE_EQ(rmse(m, data), 2.0);
}

TEST(Accuracy, CountsThresholdedMatches) {
  std::vector<float> labels{0.0f, 0.0f, 1.0f, 1.0f};
  const auto data = ladder_data(labels);
  const auto model = stump_model(2, "logistic");
  EXPECT_DOUBLE_EQ(accuracy(model, data), 1.0);
  // A stump splitting in the wrong place misclassifies one record.
  const auto off = stump_model(3, "logistic");
  EXPECT_DOUBLE_EQ(accuracy(off, data), 0.75);
}

TEST(MeanLoss, MatchesLossDefinition) {
  std::vector<float> labels(4, 1.0f);
  const auto data = ladder_data(labels);
  const Model m(3.0, make_loss("squared"));
  // squared: 0.5 * (3-1)^2 = 2 per record.
  EXPECT_DOUBLE_EQ(mean_loss(m, data), 2.0);
}

}  // namespace
}  // namespace booster::gbdt
