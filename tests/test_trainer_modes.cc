// Tests for the trainer's scheduling/termination features: level-by-level
// growth (paper SS II-A's alternative configuration), step-6 early
// stopping, and the train/test split utility.
#include <gtest/gtest.h>

#include "core/booster_model.h"
#include "gbdt/metrics.h"
#include "gbdt/trainer.h"
#include "workloads/split.h"
#include "workloads/synth.h"

namespace booster::gbdt {
namespace {

using trace::StepKind;

BinnedDataset make_data(std::uint64_t n, std::uint64_t seed = 31) {
  workloads::DatasetSpec spec;
  spec.name = "modes";
  spec.nominal_records = n;
  spec.numeric_fields = 6;
  spec.missing_rate = 0.0;
  spec.loss = "squared";
  spec.label_structure = workloads::LabelStructure::kDiffuse;
  spec.label_noise = 0.3;
  return Binner().bin(workloads::synthesize(spec, n, seed));
}

TrainerConfig config(GrowthOrder growth) {
  TrainerConfig cfg;
  cfg.num_trees = 5;
  cfg.max_depth = 4;
  cfg.loss = "squared";
  cfg.growth = growth;
  return cfg;
}

TEST(GrowthOrder, LevelAndVertexProduceIdenticalModels) {
  const auto data = make_data(2500);
  const auto vertex = Trainer(config(GrowthOrder::kVertexByVertex)).train(data);
  const auto level = Trainer(config(GrowthOrder::kLevelByLevel)).train(data);
  ASSERT_EQ(vertex.model.num_trees(), level.model.num_trees());
  for (std::uint64_t r = 0; r < 100; ++r) {
    EXPECT_DOUBLE_EQ(vertex.model.predict_raw(data, r),
                     level.model.predict_raw(data, r));
  }
}

TEST(GrowthOrder, LevelModeAggregatesHistogramEvents) {
  const auto data = make_data(2500);
  trace::StepTrace vertex_trace;
  trace::StepTrace level_trace;
  (void)Trainer(config(GrowthOrder::kVertexByVertex))
      .train(data, &vertex_trace);
  (void)Trainer(config(GrowthOrder::kLevelByLevel)).train(data, &level_trace);

  auto hist_stats = [](const trace::StepTrace& t) {
    std::uint64_t events = 0;
    std::uint64_t records = 0;
    for (const auto& e : t.events()) {
      if (e.kind == StepKind::kHistogram) {
        ++events;
        records += e.records;
      }
    }
    return std::pair{events, records};
  };
  const auto [v_events, v_records] = hist_stats(vertex_trace);
  const auto [l_events, l_records] = hist_stats(level_trace);
  // Same total binning work, fewer (coarser) events.
  EXPECT_EQ(v_records, l_records);
  EXPECT_LT(l_events, v_events);
  // At most one aggregated event per (tree, level) beyond the root events.
  EXPECT_LE(l_events, 5u * (1u + 4u));
}

TEST(GrowthOrder, OtherStepEventsUnchanged) {
  const auto data = make_data(2000);
  trace::StepTrace a;
  trace::StepTrace b;
  (void)Trainer(config(GrowthOrder::kVertexByVertex)).train(data, &a);
  (void)Trainer(config(GrowthOrder::kLevelByLevel)).train(data, &b);
  auto count = [](const trace::StepTrace& t, StepKind kind) {
    std::uint64_t n = 0;
    for (const auto& e : t.events()) n += e.kind == kind ? 1 : 0;
    return n;
  };
  EXPECT_EQ(count(a, StepKind::kPartition), count(b, StepKind::kPartition));
  EXPECT_EQ(count(a, StepKind::kSplitSelect),
            count(b, StepKind::kSplitSelect));
  EXPECT_EQ(count(a, StepKind::kTraversal), count(b, StepKind::kTraversal));
}

TEST(EarlyStop, DisabledByDefault) {
  const auto data = make_data(1500);
  const auto result = Trainer(config(GrowthOrder::kVertexByVertex)).train(data);
  EXPECT_FALSE(result.early_stopped);
  EXPECT_EQ(result.model.num_trees(), 5u);
}

TEST(EarlyStop, TerminatesOnLossPlateau) {
  // Constant labels: the first tree (base score already fits) brings no
  // improvement, so an aggressive threshold must stop the ensemble early.
  Dataset d;
  d.add_numeric_field("x");
  d.resize(500);
  for (std::uint64_t r = 0; r < 500; ++r) {
    d.set_numeric(0, r, static_cast<float>(r % 10));
    d.set_label(r, 1.0f);
  }
  const auto binned = Binner().bin(d);
  TrainerConfig cfg = config(GrowthOrder::kVertexByVertex);
  cfg.num_trees = 50;
  cfg.early_stop_rel_improvement = 1e-6;
  cfg.early_stop_patience = 2;
  const auto result = Trainer(cfg).train(binned);
  EXPECT_TRUE(result.early_stopped);
  EXPECT_LT(result.model.num_trees(), 50u);
}

TEST(EarlyStop, KeepsTrainingWhileImproving) {
  const auto data = make_data(3000);
  TrainerConfig cfg = config(GrowthOrder::kVertexByVertex);
  cfg.num_trees = 10;
  cfg.early_stop_rel_improvement = 1e-9;  // loose: real signal keeps gains
  const auto result = Trainer(cfg).train(data);
  EXPECT_FALSE(result.early_stopped);
  EXPECT_EQ(result.model.num_trees(), 10u);
}

TEST(TrainTestSplit, PartitionsAllRecords) {
  workloads::DatasetSpec spec;
  spec.name = "split";
  spec.nominal_records = 2000;
  spec.numeric_fields = 3;
  spec.categorical_cardinalities = {5};
  spec.loss = "logistic";
  const auto data = workloads::synthesize(spec, 2000, 3);
  const auto split = workloads::train_test_split(data, 0.25, 99);
  EXPECT_EQ(split.train.num_records() + split.test.num_records(), 2000u);
  EXPECT_NEAR(static_cast<double>(split.test.num_records()), 500.0, 60.0);
  EXPECT_EQ(split.train.num_fields(), data.num_fields());
  EXPECT_EQ(split.test.field(3).cardinality, 5u);
}

TEST(TrainTestSplit, DeterministicPerSeed) {
  workloads::DatasetSpec spec;
  spec.name = "split";
  spec.nominal_records = 500;
  spec.numeric_fields = 2;
  spec.loss = "squared";
  const auto data = workloads::synthesize(spec, 500, 3);
  const auto a = workloads::train_test_split(data, 0.3, 7);
  const auto b = workloads::train_test_split(data, 0.3, 7);
  ASSERT_EQ(a.train.num_records(), b.train.num_records());
  for (std::uint64_t r = 0; r < a.train.num_records(); ++r) {
    EXPECT_EQ(a.train.numeric_value(0, r), b.train.numeric_value(0, r));
  }
}

TEST(TrainTestSplit, HeldOutGeneralization) {
  // A model trained on the train half must beat chance on the test half.
  workloads::DatasetSpec spec;
  spec.name = "gen";
  spec.nominal_records = 6000;
  spec.numeric_fields = 6;
  spec.loss = "logistic";
  spec.label_structure = workloads::LabelStructure::kDiffuse;
  spec.label_noise = 0.3;
  const auto data = workloads::synthesize(spec, 6000, 13);
  const auto split = workloads::train_test_split(data, 0.3, 5);
  TrainerConfig cfg;
  cfg.num_trees = 15;
  cfg.max_depth = 4;
  cfg.loss = "logistic";
  const auto binned_train = Binner().bin(split.train);
  const auto binned_test = Binner().bin(split.test);
  const auto result = Trainer(cfg).train(binned_train);
  EXPECT_GT(auc(result.model, binned_test), 0.7);
}

TEST(MultiChipInference, MoreChipsNeverSlower) {
  const core::BoosterModel model;
  perf::InferenceSpec spec;
  spec.records = 1e7;
  spec.trees = 4000;  // too many for comfortable single-chip replication
  spec.max_depth = 6;
  spec.avg_path_length = 6.0;
  spec.record_bytes = 28;
  double prev = 1e18;
  for (const std::uint32_t chips : {1u, 2u, 4u, 8u}) {
    spec.chips = chips;
    const double t = model.inference_cost(spec);
    EXPECT_LE(t, prev * (1 + 1e-9)) << chips << " chips";
    prev = t;
  }
}

TEST(MultiChipInference, SaturatesAtMemoryBound) {
  const core::BoosterModel model;
  perf::InferenceSpec spec;
  spec.records = 1e7;
  spec.trees = 500;
  spec.max_depth = 6;
  spec.avg_path_length = 6.0;
  spec.record_bytes = 28;
  spec.chips = 64;  // compute trivially parallel; memory broadcast remains
  const double t = model.inference_cost(spec);
  const double mem_floor =
      spec.records * 32.0 / model.config().bandwidth.streaming;
  EXPECT_GE(t, mem_floor * 0.999);
}

}  // namespace
}  // namespace booster::gbdt
