#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <vector>

namespace booster::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.num_threads(), threads);
    constexpr unsigned kTasks = 64;
    std::vector<std::atomic<int>> hits(kTasks);
    for (auto& h : hits) h.store(0);
    pool.run_tasks(kTasks, [&](unsigned t) { hits[t].fetch_add(1); });
    for (unsigned t = 0; t < kTasks; ++t) {
      EXPECT_EQ(hits[t].load(), 1) << "task " << t << " @" << threads;
    }
  }
}

TEST(ThreadPool, ZeroTasksIsANoop) {
  ThreadPool pool(4);
  pool.run_tasks(0, [&](unsigned) { FAIL() << "no task should run"; });
}

TEST(ThreadPool, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<unsigned> sum{0};
    pool.run_tasks(10, [&](unsigned t) { sum.fetch_add(t); });
    EXPECT_EQ(sum.load(), 45u);
  }
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  for (const unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    constexpr std::uint64_t kBegin = 17, kEnd = 12345;
    std::vector<std::atomic<int>> hits(kEnd);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(kBegin, kEnd, 1,
                      [&](std::uint64_t b, std::uint64_t e, unsigned) {
                        for (std::uint64_t i = b; i < e; ++i)
                          hits[i].fetch_add(1);
                      });
    for (std::uint64_t i = 0; i < kEnd; ++i) {
      EXPECT_EQ(hits[i].load(), i >= kBegin ? 1 : 0) << i;
    }
  }
}

TEST(ThreadPool, ParallelForChunkIndicesAreDenseAndOrdered) {
  ThreadPool pool(4);
  const unsigned chunks = pool.num_chunks(10000, 1);
  EXPECT_EQ(chunks, 4u);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> bounds(chunks);
  pool.parallel_for(0, 10000, 1,
                    [&](std::uint64_t b, std::uint64_t e, unsigned c) {
                      bounds[c] = {b, e};
                    });
  std::uint64_t expect_begin = 0;
  for (unsigned c = 0; c < chunks; ++c) {
    EXPECT_EQ(bounds[c].first, expect_begin);
    EXPECT_LT(bounds[c].first, bounds[c].second);
    expect_begin = bounds[c].second;
  }
  EXPECT_EQ(expect_begin, 10000u);
}

TEST(ThreadPool, MinGrainKeepsSmallRangesSerial) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.num_chunks(100, 1024), 1u);
  EXPECT_EQ(pool.num_chunks(0, 1024), 0u);
  EXPECT_EQ(pool.num_chunks(2048, 1024), 2u);
  EXPECT_EQ(pool.num_chunks(1u << 20, 1024), 8u);
  unsigned calls = 0;
  pool.parallel_for(0, 100, 1024,
                    [&](std::uint64_t b, std::uint64_t e, unsigned c) {
                      ++calls;
                      EXPECT_EQ(b, 0u);
                      EXPECT_EQ(e, 100u);
                      EXPECT_EQ(c, 0u);
                    });
  EXPECT_EQ(calls, 1u);
}

TEST(ThreadPool, DefaultThreadsHonorsEnvOverride) {
  ::setenv("BOOSTER_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::default_threads(), 3u);
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 3u);
  ::setenv("BOOSTER_THREADS", "bogus", 1);
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ::unsetenv("BOOSTER_THREADS");
  EXPECT_GE(ThreadPool::default_threads(), 1u);
}

}  // namespace
}  // namespace booster::util
