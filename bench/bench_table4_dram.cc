// Regenerates Table IV: the DRAM configuration, plus the measured sustained
// bandwidth of the cycle-level model for each access pattern the training
// steps generate, and the stride anchors the effective-bandwidth
// interpolation calibrates from the stride sweep. The paper reports
// ~400 GB/s sustained for this configuration (24 channels, 16 banks, 1 KB
// rows, 12-12-12-28).
//
// Formatting shim over the "table4_dram" scenario
// (bench/scenarios/table4_dram.json): a pure memory-system scenario (no
// workloads or models) whose DRAM config block drives the probe here.
#include <cstdio>

#include "memsim/bandwidth_probe.h"
#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  (void)sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("table4_dram");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto cfg_opt = spec.dram_config(&error);
  if (!cfg_opt) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const memsim::DramConfig cfg = *cfg_opt;
  std::printf("Channels, banks, row: %u, %u, %u B\n", cfg.channels,
              cfg.banks_per_channel, cfg.row_bytes);
  std::printf("tCAS-tRP-tRCD-tRAS:   %u-%u-%u-%u\n", cfg.tCAS, cfg.tRP,
              cfg.tRCD, cfg.tRAS);
  std::printf("Block: %u B, bus %u B/cycle, clock %.2f GHz, peak %.1f GB/s\n\n",
              cfg.block_bytes, cfg.bus_bytes_per_cycle, cfg.clock_hz / 1e9,
              cfg.peak_bandwidth_bytes_per_sec() / 1e9);

  const memsim::BandwidthProbe probe(cfg);
  util::Table table({"pattern", "sustained GB/s", "row hit rate",
                     "utilization"});
  const struct {
    memsim::AccessPattern p;
    const char* name;
  } patterns[] = {
      {memsim::AccessPattern::kStreaming, "streaming"},
      {memsim::AccessPattern::kStridedGather, "strided gather (x16)"},
      {memsim::AccessPattern::kRandom, "random (spilled RMW)"},
  };
  for (const auto& [p, name] : patterns) {
    const auto r = probe.measure(p, 60000);
    table.add_row({name, util::fmt(r.bandwidth_bytes_per_sec / 1e9, 1),
                   util::fmt_pct(r.row_hit_rate),
                   util::fmt_pct(r.utilization)});
  }
  table.print();

  const auto& profile = sim::calibrated_profile(cfg);
  std::printf("\nCalibrated stride anchors: flat to stride %.0f, gather rate"
              " at %.0f, random by %.0f\n",
              profile.flat_stride, profile.cal_stride,
              profile.random_stride);
  std::printf("Paper reference: sustained bandwidth of about 400 GB/s.\n");
  return 0;
}
