// Regenerates Table IV: the DRAM configuration, plus the measured sustained
// bandwidth of the cycle-level model for each access pattern the training
// steps generate. The paper reports ~400 GB/s sustained for this
// configuration (24 channels, 16 banks, 1 KB rows, 12-12-12-28).
#include <cstdio>

#include "common.h"
#include "memsim/bandwidth_probe.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  (void)bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table IV: DRAM configuration + sustained bandwidth",
                      "Booster paper, Section IV, Table IV");

  const memsim::DramConfig cfg;
  std::printf("Channels, banks, row: %u, %u, %u B\n", cfg.channels,
              cfg.banks_per_channel, cfg.row_bytes);
  std::printf("tCAS-tRP-tRCD-tRAS:   %u-%u-%u-%u\n", cfg.tCAS, cfg.tRP,
              cfg.tRCD, cfg.tRAS);
  std::printf("Block: %u B, bus %u B/cycle, clock %.2f GHz, peak %.1f GB/s\n\n",
              cfg.block_bytes, cfg.bus_bytes_per_cycle, cfg.clock_hz / 1e9,
              cfg.peak_bandwidth_bytes_per_sec() / 1e9);

  const memsim::BandwidthProbe probe(cfg);
  util::Table table({"pattern", "sustained GB/s", "row hit rate",
                     "utilization"});
  const struct {
    memsim::AccessPattern p;
    const char* name;
  } patterns[] = {
      {memsim::AccessPattern::kStreaming, "streaming"},
      {memsim::AccessPattern::kStridedGather, "strided gather (x16)"},
      {memsim::AccessPattern::kRandom, "random (spilled RMW)"},
  };
  for (const auto& [p, name] : patterns) {
    const auto r = probe.measure(p, 60000);
    table.add_row({name, util::fmt(r.bandwidth_bytes_per_sec / 1e9, 1),
                   util::fmt_pct(r.row_hit_rate),
                   util::fmt_pct(r.utilization)});
  }
  table.print();
  std::printf("\nPaper reference: sustained bandwidth of about 400 GB/s.\n");
  return 0;
}
