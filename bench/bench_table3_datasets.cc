// Regenerates Table III: dataset and model characteristics. The synthetic
// generators must reproduce the published schema statistics; the "Seq. Time"
// column reports our sequential-CPU model's estimate next to the paper's
// measured minutes.
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Table III: dataset and model characteristics",
                      "Booster paper, Section IV, Table III");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel seq(baselines::sequential_cpu_params());

  util::Table table({"Name", "#Records(M)", "#Fields", "Categ.",
                     "#Features(one-hot)", "Seq time (model)",
                     "Seq time (paper)"});
  for (const auto& w : workloads) {
    const auto t = seq.train_cost(w.trace, w.info);
    table.add_row({w.spec.name, util::fmt(w.spec.nominal_records / 1e6, 0),
                   std::to_string(w.info.fields),
                   std::to_string(w.info.categorical_fields),
                   std::to_string(w.info.features_onehot),
                   util::fmt_time(t.total()),
                   util::fmt(w.spec.paper_seq_minutes, 1) + " min"});
  }
  table.print();
  return 0;
}
