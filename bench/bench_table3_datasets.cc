// Regenerates Table III: dataset and model characteristics. The synthetic
// generators must reproduce the published schema statistics; the "Seq. Time"
// column reports our sequential-CPU model's estimate next to the paper's
// measured minutes.
//
// Formatting shim over the "table3_datasets" scenario
// (bench/scenarios/table3_datasets.json); pass --json for the canonical
// cell dump.
#include <cstdio>

#include <string>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("table3_datasets");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  util::Table table({"Name", "#Records(M)", "#Fields", "Categ.",
                     "#Features(one-hot)", "Seq time (model)",
                     "Seq time (paper)"});
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const auto& wl = res->workloads[w];
    const double seq_t = res->cell(0, w, 0).total_seconds;  // seq-cpu
    table.add_row({wl.spec.name, util::fmt(wl.spec.nominal_records / 1e6, 0),
                   std::to_string(wl.info.fields),
                   std::to_string(wl.info.categorical_fields),
                   std::to_string(wl.info.features_onehot),
                   util::fmt_time(seq_t),
                   util::fmt(wl.spec.paper_seq_minutes, 1) + " min"});
  }
  table.print();
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
