// Sharded-training bench (ISSUE 4): times gbdt::ShardedTrainer against the
// single-shard gbdt::Trainer on synthetic fraud- and flight-shaped
// workloads across shard counts, and cross-checks the subsystem's core
// contract -- *bit-identical* models and predictions at every shard count
// (not merely structural equality: leaf weights, gains, and per-tree
// training losses must match to the last bit, which the quantized-exact
// histogram merge guarantees). Emits one machine-readable JSON object for
// the BENCH trajectory (see bench/README.md).
//
//   ./bench_sharded [--quick] [--threads N] [--records N] [--trees N]
//
// --threads defaults to BOOSTER_THREADS, else 8. Note: on a single-core CI
// container the sharded legs only measure fan-out + merge overhead; the
// shard tasks themselves serialize.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/sharded.h"
#include "gbdt/trainer.h"
#include "ipc/codec.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace {

using namespace booster;
using gbdt::Model;
using gbdt::Tree;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Bitwise model equality: structure AND floating-point payloads. The
/// sharded trainer's claim is exact equivalence, so no tolerance anywhere.
bool models_bit_identical(const Model& a, const Model& b) {
  if (a.num_trees() != b.num_trees()) return false;
  for (std::uint32_t t = 0; t < a.num_trees(); ++t) {
    const Tree& x = a.trees()[t];
    const Tree& y = b.trees()[t];
    if (x.num_nodes() != y.num_nodes()) return false;
    for (std::uint32_t id = 0; id < x.num_nodes(); ++id) {
      const auto& p = x.node(static_cast<std::int32_t>(id));
      const auto& q = y.node(static_cast<std::int32_t>(id));
      if (p.is_leaf != q.is_leaf || p.field != q.field || p.kind != q.kind ||
          p.threshold_bin != q.threshold_bin ||
          p.default_left != q.default_left || p.left != q.left ||
          p.right != q.right || p.weight != q.weight || p.gain != q.gain) {
        return false;
      }
    }
  }
  return true;
}

bool results_bit_identical(const gbdt::TrainResult& a,
                           const gbdt::TrainResult& b,
                           const gbdt::BinnedDataset& data) {
  if (!models_bit_identical(a.model, b.model)) return false;
  if (a.tree_stats.size() != b.tree_stats.size()) return false;
  for (std::size_t t = 0; t < a.tree_stats.size(); ++t) {
    if (a.tree_stats[t].train_loss != b.tree_stats[t].train_loss) return false;
  }
  for (std::uint64_t r = 0; r < data.num_records(); r += 101) {
    if (a.model.predict_raw(data, r) != b.model.predict_raw(data, r)) {
      return false;
    }
  }
  return true;
}

struct Args {
  bool quick = false;
  unsigned threads = 0;
  std::uint64_t records = 60000;
  std::uint32_t trees = 12;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      a.threads = v > 0 ? static_cast<unsigned>(v) : 0;
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v > 0) a.records = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--trees") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) a.trees = static_cast<std::uint32_t>(v);
    }
  }
  if (a.quick) {
    a.records = 12000;
    a.trees = 6;
  }
  if (a.threads == 0) {
    if (const char* env = std::getenv("BOOSTER_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) a.threads = static_cast<unsigned>(v);
    }
  }
  if (a.threads == 0) a.threads = 8;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);
  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};

  std::vector<workloads::DatasetSpec> specs = {
      workloads::fraud_spec(), workloads::spec_by_name("Flight")};

  std::printf("{\n  \"bench\": \"sharded\",\n  \"threads\": %u,\n"
              "  \"records\": %llu,\n  \"trees\": %u,\n  \"workloads\": [\n",
              args.threads, static_cast<unsigned long long>(args.records),
              args.trees);

  for (std::size_t w = 0; w < specs.size(); ++w) {
    const auto& spec = specs[w];
    const auto raw = workloads::synthesize(spec, args.records, /*seed=*/42);
    const auto data = gbdt::Binner().bin(raw);

    gbdt::TrainerConfig cfg;
    cfg.num_trees = args.trees;
    cfg.max_depth = 6;
    cfg.loss = spec.loss;
    cfg.num_threads = args.threads;

    // Reference: the single-shard hot path at the same thread count.
    auto t0 = std::chrono::steady_clock::now();
    const auto reference = gbdt::Trainer(cfg).train(data);
    const double reference_s = seconds_since(t0);

    // Per-shard-histogram serialize/deserialize cost (the wire unit the
    // distributed merge pays per Histogram::add; bench_distributed times
    // the whole transport stack on top of this in-process baseline).
    double encode_us = 0.0;
    double decode_us = 0.0;
    std::uint64_t hist_bytes = 0;
    {
      gbdt::Histogram hist(data);
      std::vector<std::uint32_t> rows(data.num_records());
      for (std::uint64_t r = 0; r < rows.size(); ++r) {
        rows[r] = static_cast<std::uint32_t>(r);
      }
      std::vector<gbdt::GradientPair> gradients(data.num_records(),
                                                {0.25f, 0.5f});
      hist.build(data, rows, gradients);
      hist_bytes = ipc::HistogramCodec::encoded_histogram_bytes(hist);
      constexpr int kReps = 100;
      std::vector<std::uint8_t> payload;
      t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kReps; ++i) {
        payload.clear();
        ipc::HistogramCodec::encode_histogram(hist, &payload);
      }
      encode_us = seconds_since(t0) / kReps * 1e6;
      gbdt::Histogram decoded(data);
      t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kReps; ++i) {
        ipc::ByteReader r(payload);
        if (!ipc::HistogramCodec::decode_histogram_into(r, &decoded)) {
          return 1;
        }
      }
      decode_us = seconds_since(t0) / kReps * 1e6;
    }

    std::printf("    {\"name\": \"%s\", \"fields\": %u,"
                " \"single_shard_s\": %.4f,\n"
                "     \"histogram_wire_bytes\": %llu,"
                " \"serialize_us_per_histogram\": %.2f,"
                " \"deserialize_us_per_histogram\": %.2f,\n"
                "     \"shard_legs\": [\n",
                spec.name.c_str(), data.num_fields(), reference_s,
                static_cast<unsigned long long>(hist_bytes), encode_us,
                decode_us);

    for (std::size_t k = 0; k < shard_counts.size(); ++k) {
      gbdt::TrainerConfig scfg = cfg;
      scfg.num_shards = shard_counts[k];
      t0 = std::chrono::steady_clock::now();
      const auto sharded = gbdt::ShardedTrainer(scfg).train(data);
      const double sharded_s = seconds_since(t0);
      const bool identical = results_bit_identical(sharded, reference, data);

      std::uint64_t shard_allocs = 0;
      for (const auto& ss : sharded.hot_path.per_shard) {
        shard_allocs += ss.histogram_allocations;
      }
      // What the per-node shard merges would move over a transport: one
      // encoded histogram per Histogram::add (the distributed trainer's
      // wire unit) -- the in-process baseline bench_distributed compares
      // its measured wire_bytes against.
      const std::uint64_t merge_bytes =
          sharded.hot_path.histogram_merges * hist_bytes;
      std::printf(
          "      {\"shards\": %u, \"wall_s\": %.4f,"
          " \"bit_identical_to_single_shard\": %s,\n"
          "       \"histogram_merges\": %llu, \"merge_bytes\": %llu,"
          " \"shard_histogram_allocations\": %llu,"
          " \"arena_bytes\": %llu}%s\n",
          shard_counts[k], sharded_s, identical ? "true" : "false",
          static_cast<unsigned long long>(sharded.hot_path.histogram_merges),
          static_cast<unsigned long long>(merge_bytes),
          static_cast<unsigned long long>(shard_allocs),
          static_cast<unsigned long long>(sharded.hot_path.arena_bytes),
          k + 1 < shard_counts.size() ? "," : "");
      if (!identical) {
        std::fprintf(stderr,
                     "FATAL: sharded output diverged from the single-shard"
                     " trainer (%s, %u shards)\n",
                     spec.name.c_str(), shard_counts[k]);
        return 1;
      }
    }
    std::printf("    ]}%s\n", w + 1 < specs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
