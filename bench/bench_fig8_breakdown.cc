// Regenerates Fig 8: execution-time breakdown of the three architectures
// normalized to Ideal 32-core. Expected shape: Ideal GPU offers a modest,
// uniform reduction of the accelerated steps with step 2 unchanged; Booster
// makes the accelerated steps small so its residual is dominated by the
// unaccelerated step 2; speedups inversely correlate with step 2's share.
//
// Formatting shim over the "fig8_breakdown" scenario
// (bench/scenarios/fig8_breakdown.json); pass --json for the canonical
// cell dump.
#include <cstdio>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig8_breakdown");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  util::Table table({"Benchmark", "System", "step1", "step2", "step3",
                     "step5", "total (norm)"});
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const double base = res->cell(0, w, 0).total_seconds;  // ideal-32core
    for (std::size_t m = 0; m < spec.models.size(); ++m) {
      const auto& c = res->cell(0, w, m);
      table.add_row(
          {res->workloads[w].spec.name, c.model_name,
           util::fmt_pct(c.breakdown[trace::StepKind::kHistogram] / base),
           util::fmt_pct(c.breakdown[trace::StepKind::kSplitSelect] / base),
           util::fmt_pct(c.breakdown[trace::StepKind::kPartition] / base),
           util::fmt_pct(c.breakdown[trace::StepKind::kTraversal] / base),
           util::fmt_pct(c.total_seconds / base)});
    }
  }
  table.print();
  std::printf("\nPaper reference: Booster's residual time is dominated by"
              " the unaccelerated step 2; speedups inversely correlate with"
              " step 2's share.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
