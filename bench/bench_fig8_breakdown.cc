// Regenerates Fig 8: execution-time breakdown of the three architectures
// normalized to Ideal 32-core. Expected shape: Ideal GPU offers a modest,
// uniform reduction of the accelerated steps with step 2 unchanged; Booster
// makes the accelerated steps small so its residual is dominated by the
// unaccelerated step 2; speedups inversely correlate with step 2's share.
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 8: execution time breakdown (normalized)",
                      "Booster paper, Section V-B, Figure 8");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster(bench::default_booster_config());
  const auto booster_cycle = bench::cycle_calibrated_booster();

  util::Table table({"Benchmark", "System", "step1", "step2", "step3",
                     "step5", "total (norm)"});
  for (const auto& w : workloads) {
    const auto cpu = ideal_cpu.train_cost(w.trace, w.info);
    const double base = cpu.total();
    auto add = [&](const std::string& sys, const perf::StepBreakdown& b) {
      table.add_row({w.spec.name, sys,
                     util::fmt_pct(b[trace::StepKind::kHistogram] / base),
                     util::fmt_pct(b[trace::StepKind::kSplitSelect] / base),
                     util::fmt_pct(b[trace::StepKind::kPartition] / base),
                     util::fmt_pct(b[trace::StepKind::kTraversal] / base),
                     util::fmt_pct(b.total() / base)});
    };
    add("Ideal 32-core", cpu);
    add("Ideal GPU", ideal_gpu.train_cost(w.trace, w.info));
    add("Booster", booster.train_cost(w.trace, w.info));
    add("Booster-cycle", booster_cycle.train_cost(w.trace, w.info));
  }
  table.print();
  std::printf("\nPaper reference: Booster's residual time is dominated by"
              " the unaccelerated step 2; speedups inversely correlate with"
              " step 2's share.\n");
  return 0;
}
