// Regenerates Fig 11: validating the Ideal models against Real-hardware
// configurations. Two properties must hold (paper Section V-E):
//   1. Ideal 32-core <= Real 32-core and Ideal GPU <= Real GPU in time
//      (the Ideal models are upper bounds on performance), and
//   2. on real hardware the GPU loses to the multicore for Allstate and
//      Mq2008 (irregularity + small-dataset overheads), while the Ideal GPU
//      is uniformly faster -- the workload irregularity that motivates an
//      accelerator.
//
// Formatting shim over the "fig11_validation" scenario
// (bench/scenarios/fig11_validation.json); pass --json for the canonical
// cell dump.
#include <cstdio>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig11_validation");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order: ideal-32core, real-32core, ideal-gpu, real-gpu, booster,
  // booster-cycle.
  util::Table table({"Benchmark", "Ideal 32-core", "Real 32-core",
                     "Ideal GPU", "Real GPU", "Booster", "Booster-cycle",
                     "GPU wins on real?"});
  bool ok_bounds = true;
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const double icpu = res->cell(0, w, 0).total_seconds;
    const double rcpu = res->cell(0, w, 1).total_seconds;
    const double igpu = res->cell(0, w, 2).total_seconds;
    const double rgpu = res->cell(0, w, 3).total_seconds;
    const double bst = res->cell(0, w, 4).total_seconds;
    const double bstc = res->cell(0, w, 5).total_seconds;
    ok_bounds &= (icpu <= rcpu) && (igpu <= rgpu);
    // Normalized to Ideal 32-core, as in the figure.
    table.add_row({res->workloads[w].spec.name, "1.00",
                   util::fmt(rcpu / icpu), util::fmt(igpu / icpu),
                   util::fmt(rgpu / icpu), util::fmt(bst / icpu, 3),
                   util::fmt(bstc / icpu, 3),
                   rgpu < rcpu ? "yes" : "no (CPU wins)"});
  }
  table.print();
  std::printf("\nIdeal <= Real everywhere: %s\n", ok_bounds ? "yes" : "NO");
  std::printf("Paper reference: real GPU loses to the real multicore for"
              " Allstate and Mq2008; Ideal GPU always beats Ideal 32-core.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
