// Regenerates Fig 11: validating the Ideal models against Real-hardware
// configurations. Two properties must hold (paper Section V-E):
//   1. Ideal 32-core <= Real 32-core and Ideal GPU <= Real GPU in time
//      (the Ideal models are upper bounds on performance), and
//   2. on real hardware the GPU loses to the multicore for Allstate and
//      Mq2008 (irregularity + small-dataset overheads), while the Ideal GPU
//      is uniformly faster -- the workload irregularity that motivates an
//      accelerator.
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 11: Ideal vs Real configurations",
                      "Booster paper, Section V-E, Figure 11");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel real_cpu(baselines::real_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const baselines::CpuLikeModel real_gpu(baselines::real_gpu_params());
  const core::BoosterModel booster(bench::default_booster_config());
  const auto booster_cycle = bench::cycle_calibrated_booster();

  util::Table table({"Benchmark", "Ideal 32-core", "Real 32-core",
                     "Ideal GPU", "Real GPU", "Booster", "Booster-cycle",
                     "GPU wins on real?"});
  bool ok_bounds = true;
  for (const auto& w : workloads) {
    const double icpu = ideal_cpu.train_cost(w.trace, w.info).total();
    const double rcpu = real_cpu.train_cost(w.trace, w.info).total();
    const double igpu = ideal_gpu.train_cost(w.trace, w.info).total();
    const double rgpu = real_gpu.train_cost(w.trace, w.info).total();
    const double bst = booster.train_cost(w.trace, w.info).total();
    const double bstc = booster_cycle.train_cost(w.trace, w.info).total();
    ok_bounds &= (icpu <= rcpu) && (igpu <= rgpu);
    // Normalized to Ideal 32-core, as in the figure.
    table.add_row({w.spec.name, "1.00", util::fmt(rcpu / icpu),
                   util::fmt(igpu / icpu), util::fmt(rgpu / icpu),
                   util::fmt(bst / icpu, 3), util::fmt(bstc / icpu, 3),
                   rgpu < rcpu ? "yes" : "no (CPU wins)"});
  }
  table.print();
  std::printf("\nIdeal <= Real everywhere: %s\n", ok_bounds ? "yes" : "NO");
  std::printf("Paper reference: real GPU loses to the real multicore for"
              " Allstate and Mq2008; Ideal GPU always beats Ideal 32-core.\n");
  return 0;
}
