// Regenerates Fig 13: batch inference speedup over Ideal 32-core. Booster
// loads the 500-tree ensemble one tree per BU, 6 replicas over 3000 BUs.
// Expected shape: deep-tree benchmarks cluster around ~55x; IoT is the
// outlier (~21x) because its shallow trees cut the multicore's work while
// Booster's throughput tracks the *maximum* tree depth; mean ~45x.
#include <cstdio>

#include <vector>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 13: batch inference speedup",
                      "Booster paper, Section V-H, Figure 13");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const core::BoosterModel booster(bench::default_booster_config());

  util::Table table({"Benchmark", "avg path", "max depth", "Booster time",
                     "Ideal 32-core time", "Speedup"});
  std::vector<double> speedups;
  for (const auto& w : workloads) {
    perf::InferenceSpec spec;
    spec.records = static_cast<double>(w.spec.nominal_records);
    spec.trees = w.info.trees;
    spec.max_depth = w.train.model.max_tree_depth();
    spec.avg_path_length = w.train.model.avg_path_length(w.binned);
    spec.record_bytes = w.info.record_bytes;

    const double cpu_t = ideal_cpu.inference_cost(spec);
    const double bst_t = booster.inference_cost(spec);
    speedups.push_back(cpu_t / bst_t);
    table.add_row({w.spec.name, util::fmt(spec.avg_path_length),
                   std::to_string(spec.max_depth), util::fmt_time(bst_t),
                   util::fmt_time(cpu_t), util::fmt_x(cpu_t / bst_t)});
  }
  table.add_row({"mean", "-", "-", "-", "-",
                 util::fmt_x(util::mean(speedups))});
  table.print();
  std::printf("\nPaper reference: ~55.5x for the four deep-tree benchmarks,"
              " 21.1x for IoT (shallow trees), 45x mean.\n");
  return 0;
}
