// Regenerates Fig 13: batch inference speedup over Ideal 32-core. Booster
// loads the 500-tree ensemble one tree per BU, 6 replicas over 3000 BUs.
// Expected shape: deep-tree benchmarks cluster around ~55x; IoT is the
// outlier (~21x) because its shallow trees cut the multicore's work while
// Booster's throughput tracks the *maximum* tree depth; mean ~45x.
//
// Formatting shim over the "fig13_inference" scenario
// (bench/scenarios/fig13_inference.json), which sets include_inference so
// every cell carries the model's batch-inference latency; pass --json for
// the canonical cell dump.
#include <cstdio>

#include <string>
#include <vector>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig13_inference");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order: ideal-32core, booster.
  util::Table table({"Benchmark", "avg path", "max depth", "Booster time",
                     "Ideal 32-core time", "Speedup"});
  std::vector<double> speedups;
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const auto& wl = res->workloads[w];
    const double cpu_t = res->cell(0, w, 0).inference_seconds;
    const double bst_t = res->cell(0, w, 1).inference_seconds;
    speedups.push_back(cpu_t / bst_t);
    table.add_row({wl.spec.name,
                   util::fmt(wl.train.model.avg_path_length(wl.binned)),
                   std::to_string(wl.train.model.max_tree_depth()),
                   util::fmt_time(bst_t), util::fmt_time(cpu_t),
                   util::fmt_x(cpu_t / bst_t)});
  }
  table.add_row({"mean", "-", "-", "-", "-",
                 util::fmt_x(util::mean(speedups))});
  table.print();
  std::printf("\nPaper reference: ~55.5x for the four deep-tree benchmarks,"
              " 21.1x for IoT (shallow trees), 45x mean.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
