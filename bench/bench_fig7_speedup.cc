// Regenerates Fig 7: training speedup of Ideal GPU, Inter-Record (IR), and
// Booster over the Ideal 32-core baseline, per benchmark plus geomean.
// Expected shape: Ideal GPU 1.6-1.9x everywhere; IR between GPU and Booster
// where a histogram copy fits (Higgs, Mq2008) and near/below GPU otherwise;
// Booster from ~4.6x (Flight) to ~30.6x (IoT), geomean ~11.4x.
//
// Formatting shim over the "fig7_speedup" scenario
// (bench/scenarios/fig7_speedup.json); pass --json for the canonical cell
// dump. test_scenario asserts the runner reproduces the legacy per-model
// wiring bit-identically, serial and parallel.
#include <cstdio>

#include <vector>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig7_speedup");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order in the spec: ideal-32core, ideal-gpu, inter-record,
  // booster, booster-cycle.
  util::Table table({"Benchmark", "Ideal GPU", "Inter-Record", "Booster",
                     "Booster-cycle", "Ideal 32-core time"});
  std::vector<double> gpu_speedups, ir_speedups, booster_speedups,
      cycle_speedups;
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const double cpu_t = res->cell(0, w, 0).total_seconds;
    const double gpu_t = res->cell(0, w, 1).total_seconds;
    const double ir_t = res->cell(0, w, 2).total_seconds;
    const double booster_t = res->cell(0, w, 3).total_seconds;
    const double cycle_t = res->cell(0, w, 4).total_seconds;
    gpu_speedups.push_back(cpu_t / gpu_t);
    ir_speedups.push_back(cpu_t / ir_t);
    booster_speedups.push_back(cpu_t / booster_t);
    cycle_speedups.push_back(cpu_t / cycle_t);
    table.add_row({res->workloads[w].spec.name, util::fmt_x(cpu_t / gpu_t),
                   util::fmt_x(cpu_t / ir_t), util::fmt_x(cpu_t / booster_t),
                   util::fmt_x(cpu_t / cycle_t), util::fmt_time(cpu_t)});
  }
  table.add_row({"geomean", util::fmt_x(util::geomean(gpu_speedups)),
                 util::fmt_x(util::geomean(ir_speedups)),
                 util::fmt_x(util::geomean(booster_speedups)),
                 util::fmt_x(util::geomean(cycle_speedups)), "-"});
  table.print();
  std::printf("\nPaper reference: Ideal GPU 1.6-1.9x; Booster 4.6x (Flight)"
              " to 30.6x (IoT), geomean 11.4x.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
