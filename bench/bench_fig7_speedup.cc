// Regenerates Fig 7: training speedup of Ideal GPU, Inter-Record (IR), and
// Booster over the Ideal 32-core baseline, per benchmark plus geomean.
// Expected shape: Ideal GPU 1.6-1.9x everywhere; IR between GPU and Booster
// where a histogram copy fits (Higgs, Mq2008) and near/below GPU otherwise;
// Booster from ~4.6x (Flight) to ~30.6x (IoT), geomean ~11.4x.
#include <cstdio>

#include <vector>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 7: performance comparison (training speedup)",
                      "Booster paper, Section V-A, Figure 7");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster(bench::default_booster_config());
  const auto booster_cycle = bench::cycle_calibrated_booster();

  util::Table table({"Benchmark", "Ideal GPU", "Inter-Record", "Booster",
                     "Booster-cycle", "Ideal 32-core time"});
  std::vector<double> gpu_speedups, ir_speedups, booster_speedups,
      cycle_speedups;
  for (const auto& w : workloads) {
    const double cpu_t = ideal_cpu.train_cost(w.trace, w.info).total();
    const double gpu_t = ideal_gpu.train_cost(w.trace, w.info).total();
    const auto ir = bench::inter_record_for(w);
    const double ir_t = ir.train_cost(w.trace, w.info).total();
    const double booster_t = booster.train_cost(w.trace, w.info).total();
    const double cycle_t = booster_cycle.train_cost(w.trace, w.info).total();
    gpu_speedups.push_back(cpu_t / gpu_t);
    ir_speedups.push_back(cpu_t / ir_t);
    booster_speedups.push_back(cpu_t / booster_t);
    cycle_speedups.push_back(cpu_t / cycle_t);
    table.add_row({w.spec.name, util::fmt_x(cpu_t / gpu_t),
                   util::fmt_x(cpu_t / ir_t), util::fmt_x(cpu_t / booster_t),
                   util::fmt_x(cpu_t / cycle_t), util::fmt_time(cpu_t)});
  }
  table.add_row({"geomean", util::fmt_x(util::geomean(gpu_speedups)),
                 util::fmt_x(util::geomean(ir_speedups)),
                 util::fmt_x(util::geomean(booster_speedups)),
                 util::fmt_x(util::geomean(cycle_speedups)), "-"});
  table.print();
  std::printf("\nPaper reference: Ideal GPU 1.6-1.9x; Booster 4.6x (Flight)"
              " to 30.6x (IoT), geomean 11.4x.\n");
  return 0;
}
