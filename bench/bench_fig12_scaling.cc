// Regenerates Fig 12: sensitivity to dataset size. Datasets are scaled up
// 10x (the paper replicates the data); Booster's speedups grow markedly
// (geomean 11.4 -> 27.9 in the paper, range 9.8-61.5) while the Ideal GPU
// stays under 2x, because per-node host overheads amortize and the
// record-proportional accelerated steps dominate.
//
// Formatting shim over the "fig12_scaling" scenario
// (bench/scenarios/fig12_scaling.json), a record-scale sweep with values
// [1, 10]; pass --json for the canonical cell dump.
#include <cstdio>

#include <vector>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig12_scaling");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order: ideal-32core, ideal-gpu, booster; sweep points 1x, 10x.
  util::Table table({"Benchmark", "GPU 1x", "GPU 10x", "Booster 1x",
                     "Booster 10x"});
  std::vector<double> b1, b10;
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const double cpu1 = res->cell(0, w, 0).total_seconds;
    const double cpu10 = res->cell(1, w, 0).total_seconds;
    const double gpu1 = cpu1 / res->cell(0, w, 1).total_seconds;
    const double gpu10 = cpu10 / res->cell(1, w, 1).total_seconds;
    const double bst1 = cpu1 / res->cell(0, w, 2).total_seconds;
    const double bst10 = cpu10 / res->cell(1, w, 2).total_seconds;
    b1.push_back(bst1);
    b10.push_back(bst10);
    table.add_row({res->workloads[w].spec.name, util::fmt_x(gpu1),
                   util::fmt_x(gpu10), util::fmt_x(bst1),
                   util::fmt_x(bst10)});
  }
  table.add_row({"geomean", "-", "-", util::fmt_x(util::geomean(b1)),
                 util::fmt_x(util::geomean(b10))});
  table.print();
  std::printf("\nPaper reference: every benchmark speeds up more at 10x;"
              " geomean 11.4 -> 27.9; GPU stays < 2x.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
