// Regenerates Fig 12: sensitivity to dataset size. Datasets are scaled up
// 10x (the paper replicates the data); Booster's speedups grow markedly
// (geomean 11.4 -> 27.9 in the paper, range 9.8-61.5) while the Ideal GPU
// stays under 2x, because per-node host overheads amortize and the
// record-proportional accelerated steps dominate.
#include <cstdio>

#include <vector>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 12: sensitivity to dataset size (10x scale-up)",
                      "Booster paper, Section V-F, Figure 12");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster(bench::default_booster_config());

  util::Table table({"Benchmark", "GPU 1x", "GPU 10x", "Booster 1x",
                     "Booster 10x"});
  std::vector<double> b1, b10;
  for (const auto& w : workloads) {
    // 10x more records: scale the trace's record dimension only (tree count
    // and histogram sizes are unchanged, as in the paper's replication).
    const auto scaled = w.trace.scaled_by(10.0);
    trace::WorkloadInfo info10 = w.info;
    info10.nominal_records *= 10;

    const double cpu1 = ideal_cpu.train_cost(w.trace, w.info).total();
    const double cpu10 = ideal_cpu.train_cost(scaled, info10).total();
    const double gpu1 = cpu1 / ideal_gpu.train_cost(w.trace, w.info).total();
    const double gpu10 = cpu10 / ideal_gpu.train_cost(scaled, info10).total();
    const double bst1 = cpu1 / booster.train_cost(w.trace, w.info).total();
    const double bst10 = cpu10 / booster.train_cost(scaled, info10).total();
    b1.push_back(bst1);
    b10.push_back(bst10);
    table.add_row({w.spec.name, util::fmt_x(gpu1), util::fmt_x(gpu10),
                   util::fmt_x(bst1), util::fmt_x(bst10)});
  }
  table.add_row({"geomean", "-", "-", util::fmt_x(util::geomean(b1)),
                 util::fmt_x(util::geomean(b10))});
  table.print();
  std::printf("\nPaper reference: every benchmark speeds up more at 10x;"
              " geomean 11.4 -> 27.9; GPU stays < 2x.\n");
  return 0;
}
