#include "common.h"

#include <cstdio>
#include <cstring>

namespace booster::bench {

BenchOptions BenchOptions::parse(int argc, char** argv) {
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      opt.quick = true;
      opt.runner.sim_records = 8000;
      opt.runner.sim_trees = 12;
    }
  }
  return opt;
}

std::vector<workloads::WorkloadResult> load_workloads(const BenchOptions& opt) {
  return workloads::run_paper_workloads(opt.runner);
}

const memsim::BandwidthProfile& calibrated_bandwidth() {
  static const memsim::BandwidthProfile profile = [] {
    memsim::BandwidthProbe probe;
    return probe.calibrate(/*num_requests=*/60000);
  }();
  return profile;
}

core::BoosterConfig default_booster_config() {
  core::BoosterConfig cfg;
  cfg.bandwidth = calibrated_bandwidth();
  return cfg;
}

perf::CycleCalibratedBoosterModel cycle_calibrated_booster() {
  return perf::CycleCalibratedBoosterModel(default_booster_config());
}

baselines::InterRecordModel inter_record_for(
    const workloads::WorkloadResult& w) {
  baselines::InterRecordParams p;
  p.bandwidth = calibrated_bandwidth();
  p.copies = w.spec.ir_copies >= 0
                 ? static_cast<std::uint32_t>(w.spec.ir_copies)
                 : baselines::InterRecordModel::estimate_copies(w.info, p);
  return baselines::InterRecordModel(p);
}

void print_header(const std::string& experiment, const std::string& paper_ref) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("==============================================================\n");
}

}  // namespace booster::bench
