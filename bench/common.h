// Shared infrastructure for the table/figure regeneration benches: workload
// loading (with a --quick flag for CI), DRAM bandwidth calibration, and the
// standard model roster.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "memsim/bandwidth_probe.h"
#include "perf/cycle_calibrated.h"
#include "perf/perf_model.h"
#include "workloads/runner.h"

namespace booster::bench {

struct BenchOptions {
  workloads::RunnerConfig runner;
  bool quick = false;  // smaller samples; for smoke runs

  static BenchOptions parse(int argc, char** argv);
};

/// Runs the five paper workloads with the options' runner config.
std::vector<workloads::WorkloadResult> load_workloads(const BenchOptions& opt);

/// Calibrates the DRAM sustained-bandwidth profile from the cycle-level
/// memory model (Table IV config). Cached across calls within a process.
const memsim::BandwidthProfile& calibrated_bandwidth();

/// Booster configuration with the calibrated bandwidth profile applied.
core::BoosterConfig default_booster_config();

/// The cycle-calibrated Booster model (closed-loop co-simulation replay)
/// on the same calibrated configuration -- reported next to the analytic
/// model in the figure benches so model-vs-cycle-sim disagreement is a
/// first-class number.
perf::CycleCalibratedBoosterModel cycle_calibrated_booster();

/// The Inter-Record baseline for one workload (uses the paper's published
/// per-dataset histogram copy counts; see workloads::DatasetSpec).
baselines::InterRecordModel inter_record_for(const workloads::WorkloadResult& w);

/// Prints the standard header naming the experiment and its provenance.
void print_header(const std::string& experiment, const std::string& paper_ref);

}  // namespace booster::bench
