// Streaming bench (ISSUE 9 acceptance): chunked ingestion through a frozen
// bin map into a stream::Retrainer, reporting staleness vs throughput as
// one machine-readable JSON object on stdout (see bench/README.md). Two
// sweeps share the points array: refresh cadence (unpaced -- how much
// ingest throughput the refresh path costs) and arrival rate (paced at a
// fixed cadence -- what staleness looks like under a real rows/s load).
//
// Every point is gated on determinism: the measured run's refreshed
// generations (serialized model bytes) must be bit-identical to reruns of
// the same chunk sequence at every (threads, shards) grid point in
// {1,8} x {1,3}, and every in-process hand-off must land (slot version ==
// generation count). Any divergence exits non-zero -- staleness numbers
// from a non-deterministic refresh path are worthless, so they are never
// printed.
//
//   ./bench_stream [--quick]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/model_slot.h"
#include "sim/runner.h"
#include "stream/frozen_bin_map.h"
#include "stream/retrainer.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

using namespace booster;

namespace {

// Distinct-looking seeds per chunk index (same scheme as the scenario
// runner's streaming leg, so the two measure the same kind of stream).
constexpr std::uint64_t kChunkSeedStride = 1000003;
constexpr std::uint64_t kSeed = 42;

struct StreamParams {
  std::uint64_t bootstrap_rows = 4000;
  std::uint64_t chunk_rows = 1000;
  std::uint32_t chunks = 8;
  std::uint32_t window_chunks = 4;
  std::uint32_t refresh_every_chunks = 2;
  std::uint32_t refresh_trees = 16;
  double arrival_rows_per_sec = 0.0;  // 0 = unpaced
};

struct StreamRun {
  std::vector<std::string> generations;  // save_model bytes per refresh
  std::uint64_t rows = 0;
  double wall_seconds = 0.0;
  std::vector<double> staleness_ms;
  std::uint64_t handoff_failures = 0;
  std::uint64_t final_trees = 0;
  std::uint64_t slot_version = 0;
};

workloads::DatasetSpec chunk_spec(const workloads::DatasetSpec& base,
                                  const StreamParams& p,
                                  std::uint32_t chunk_index) {
  // Label noise ramps to 2x over the stream (the scenario runner's
  // "noise-ramp" drift schedule): refreshes have real drift to absorb.
  workloads::DatasetSpec out = base;
  out.label_noise = base.label_noise *
                    (1.0 + static_cast<double>(chunk_index + 1) /
                               static_cast<double>(p.chunks));
  return out;
}

StreamRun run_stream(const workloads::DatasetSpec& spec,
                     const StreamParams& p, std::uint32_t threads,
                     std::uint32_t shards, bool paced) {
  const gbdt::Dataset bootstrap_raw =
      workloads::synthesize(spec, p.bootstrap_rows, kSeed);
  const gbdt::BinnedDataset bootstrap = gbdt::Binner().bin(bootstrap_raw);
  const stream::FrozenBinMap map(bootstrap);

  stream::RetrainerConfig rcfg;
  rcfg.trainer.num_trees = p.refresh_trees;
  rcfg.trainer.max_depth = 6;
  rcfg.trainer.loss = spec.loss;
  rcfg.trainer.num_threads = threads;
  rcfg.trainer.num_shards = shards;
  rcfg.refresh_every_chunks = p.refresh_every_chunks;
  rcfg.window_chunks = p.window_chunks;
  serve::ModelSlot slot;
  rcfg.slot = &slot;
  stream::Retrainer retrainer(map, rcfg);

  StreamRun run;
  const auto start = std::chrono::steady_clock::now();
  for (std::uint32_t i = 0; i < p.chunks; ++i) {
    const gbdt::Dataset chunk =
        workloads::synthesize(chunk_spec(spec, p, i), p.chunk_rows,
                              kSeed + kChunkSeedStride * (i + 1));
    if (paced && p.arrival_rows_per_sec > 0.0) {
      const double due_s =
          static_cast<double>(run.rows + chunk.num_records()) /
          p.arrival_rows_per_sec;
      std::this_thread::sleep_until(
          start +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(due_s)));
    }
    const auto arrived = std::chrono::steady_clock::now();
    if (retrainer.ingest(chunk)) {
      const auto installed = std::chrono::steady_clock::now();
      run.staleness_ms.push_back(
          std::chrono::duration<double, std::milli>(installed - arrived)
              .count());
      std::stringstream bytes;
      gbdt::save_model(*retrainer.latest(), bytes);
      run.generations.push_back(bytes.str());
    }
    run.rows += chunk.num_records();
  }
  run.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  run.handoff_failures = retrainer.stats().handoff_failures;
  run.final_trees = retrainer.stats().latest_trees;
  const auto served = slot.current();
  run.slot_version = served == nullptr ? 0 : served->version;
  return run;
}

/// Reruns the point's chunk sequence across the verification grid; true
/// iff every grid point reproduced the measured generations bit-for-bit.
bool verify_grid(const workloads::DatasetSpec& spec, const StreamParams& p,
                 const StreamRun& measured) {
  const std::pair<std::uint32_t, std::uint32_t> grid[] = {
      {1, 3}, {8, 1}, {8, 3}};
  for (const auto& [threads, shards] : grid) {
    const StreamRun rerun =
        run_stream(spec, p, threads, shards, /*paced=*/false);
    if (rerun.generations != measured.generations) {
      std::fprintf(stderr,
                   "bench_stream: refreshed generations diverged at"
                   " %u threads x %u shards\n",
                   threads, shards);
      return false;
    }
  }
  return true;
}

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double sum = 0.0;
  for (const double x : v) sum += x;
  return sum / static_cast<double>(v.size());
}

double max_of(const std::vector<double>& v) {
  double best = 0.0;
  for (const double x : v) best = x > best ? x : best;
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = sim::parse_run_options(argc, argv);

  workloads::DatasetSpec spec = workloads::spec_by_name("IoT");
  StreamParams base;
  if (opt.quick) {
    base.bootstrap_rows = 2000;
    base.chunk_rows = 500;
    base.chunks = 4;
    base.refresh_trees = 8;
  }

  // Sweep 1: refresh cadence, unpaced (throughput cost of the refresh
  // path). Sweep 2: arrival rate, paced at the base cadence (staleness
  // under load).
  const std::vector<std::uint32_t> cadence_points =
      opt.quick ? std::vector<std::uint32_t>{1, 2}
                : std::vector<std::uint32_t>{1, 2, 4};
  const std::vector<double> arrival_points =
      opt.quick ? std::vector<double>{8000.0}
                : std::vector<double>{8000.0, 32000.0};

  std::vector<StreamParams> points;
  for (const std::uint32_t cadence : cadence_points) {
    StreamParams p = base;
    p.refresh_every_chunks = cadence;
    points.push_back(p);
  }
  for (const double arrival : arrival_points) {
    StreamParams p = base;
    p.arrival_rows_per_sec = arrival;
    points.push_back(p);
  }

  std::printf("{\n  \"bench\": \"stream\",\n");
  std::printf("  \"workload\": \"%s\",\n", spec.name.c_str());
  std::printf("  \"bootstrap_rows\": %llu,\n",
              static_cast<unsigned long long>(base.bootstrap_rows));
  std::printf("  \"chunk_rows\": %llu,\n",
              static_cast<unsigned long long>(base.chunk_rows));
  std::printf("  \"chunks\": %u,\n", base.chunks);
  std::printf("  \"window_chunks\": %u,\n", base.window_chunks);
  std::printf("  \"refresh_trees\": %u,\n", base.refresh_trees);
  std::printf("  \"points\": [\n");

  bool diverged = false;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const StreamParams& p = points[i];
    const StreamRun r = run_stream(spec, p, /*threads=*/1, /*shards=*/1,
                                   /*paced=*/true);
    const bool ok = r.handoff_failures == 0 &&
                    r.slot_version == r.generations.size() &&
                    verify_grid(spec, p, r);
    if (!ok) diverged = true;
    std::printf("    {\"arrival_rows_per_sec\": %.1f,"
                " \"refresh_every_chunks\": %u, \"rows\": %llu,"
                " \"refreshes\": %llu, \"final_trees\": %llu,"
                " \"rows_per_sec\": %.1f, \"staleness_ms_mean\": %.3f,"
                " \"staleness_ms_max\": %.3f, \"verify_grid\": \"%s\"}%s\n",
                p.arrival_rows_per_sec, p.refresh_every_chunks,
                static_cast<unsigned long long>(r.rows),
                static_cast<unsigned long long>(r.generations.size()),
                static_cast<unsigned long long>(r.final_trees),
                r.wall_seconds > 0.0
                    ? static_cast<double>(r.rows) / r.wall_seconds
                    : 0.0,
                mean(r.staleness_ms), max_of(r.staleness_ms),
                ok ? "pass" : "FAIL", i + 1 < points.size() ? "," : "");
  }
  std::printf("  ],\n");
  std::printf("  \"bit_identity\": \"%s\"\n}\n",
              diverged ? "FAIL" : "pass");
  if (diverged) {
    std::fprintf(stderr,
                 "bench_stream: a refresh hand-off failed or generations"
                 " diverged across the (threads x shards) grid\n");
    return 1;
  }
  return 0;
}
