// Serving bench (ISSUE 8 acceptance): a closed-loop load generator over
// real localhost TCP against the epoll prediction server, sweeping
// concurrency x batch window. One machine-readable JSON object on stdout
// (see bench/README.md): per sweep point {connections, batch_window_us,
// qps, rows_per_sec, p50/p99/p999 latency, bytes/request} plus the
// server's batch-size histogram (GET /stats), which is the evidence that
// rows from concurrent connections actually coalesce into blocked
// FlatEnsemble traversals.
//
// Every sweep point is gated on bit-identity: each served prediction is
// compared bitwise against local Model::predict inside the harness, and
// any mismatch or transport error exits non-zero -- throughput numbers
// from a diverging server are worthless, so they are never printed.
//
//   ./bench_serve [--quick]
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/client.h"
#include "serve/model_slot.h"
#include "serve/server.h"
#include "sim/json.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

using namespace booster;

namespace {

// Clone through the serializer: Model is move-only and the bench keeps
// its local copy for the expected-prediction vector.
gbdt::Model clone_model(const gbdt::Model& model) {
  std::stringstream buf;
  gbdt::save_model(model, buf);
  return gbdt::load_model(buf);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = sim::parse_run_options(argc, argv);

  // The paper's IoT shape (binary sensor features dominate) is the
  // serving-friendliest of the Table III set; sized down so the bench is
  // a latency measurement, not a training one.
  workloads::DatasetSpec spec = workloads::spec_by_name("IoT");
  const std::uint64_t records = opt.quick ? 4000 : 20000;
  const gbdt::Dataset raw = workloads::synthesize(spec, records, /*seed=*/11);
  const gbdt::BinnedDataset binned = gbdt::Binner().bin(raw);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = opt.quick ? 16 : 64;
  tcfg.max_depth = 6;
  tcfg.loss = spec.loss;
  const gbdt::TrainResult trained = gbdt::Trainer(tcfg).train(binned);

  std::vector<double> expected(binned.num_records());
  for (std::uint64_t r = 0; r < binned.num_records(); ++r) {
    expected[r] = trained.model.predict(binned, r);
  }

  const std::vector<std::uint32_t> connection_points =
      opt.quick ? std::vector<std::uint32_t>{1, 4}
                : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
  const std::vector<std::uint64_t> window_points =
      opt.quick ? std::vector<std::uint64_t>{0, 200}
                : std::vector<std::uint64_t>{0, 200, 1000};
  const std::uint32_t requests_per_connection = opt.quick ? 50 : 400;
  const std::uint32_t rows_per_request = 8;

  std::printf("{\n  \"bench\": \"serve\",\n");
  std::printf("  \"workload\": \"%s\",\n", spec.name.c_str());
  std::printf("  \"records\": %llu,\n",
              static_cast<unsigned long long>(records));
  std::printf("  \"trees\": %u,\n", tcfg.num_trees);
  std::printf("  \"rows_per_request\": %u,\n", rows_per_request);
  std::printf("  \"requests_per_connection\": %u,\n", requests_per_connection);
  std::printf("  \"points\": [\n");

  bool diverged = false;
  std::size_t point = 0;
  const std::size_t total_points =
      connection_points.size() * window_points.size();
  for (const std::uint64_t window_us : window_points) {
    for (const std::uint32_t connections : connection_points) {
      // Fresh server per point: the /stats batch histogram then describes
      // exactly this (connections, window) combination.
      serve::ModelSlot slot;
      slot.install(clone_model(trained.model));
      serve::ServerConfig scfg;
      scfg.batch_window = std::chrono::microseconds(window_us);
      serve::Server server(scfg, &slot, binned);
      std::thread loop([&server] { server.run(); });

      serve::LoadConfig load;
      load.port = server.port();
      load.connections = connections;
      load.requests_per_connection = requests_per_connection;
      load.rows_per_request = rows_per_request;
      const serve::LoadResult r = serve::run_closed_loop(load, raw, expected);

      // The histogram must be read before stop(): /stats runs on-loop.
      serve::BlockingClient stats_client;
      std::string hist = "[]";
      unsigned long long batches = 0;
      if (stats_client.connect(server.port())) {
        serve::Response resp;
        std::string parse_error;
        std::optional<sim::Json> stats;
        if (stats_client.request("GET", "/stats", "", &resp) &&
            resp.status == 200) {
          stats = sim::Json::parse(resp.body, &parse_error);
        }
        if (stats.has_value()) {
          if (const sim::Json* h = stats->find("batch_size_hist")) {
            hist = h->dump();
            while (!hist.empty() &&
                   (hist.back() == '\n' || hist.back() == ' ')) {
              hist.pop_back();
            }
          }
          if (const sim::Json* b = stats->find("batches")) {
            batches = static_cast<unsigned long long>(b->as_double());
          }
        }
      }
      server.stop();
      loop.join();

      if (r.errors != 0 || r.mismatches != 0) diverged = true;
      std::printf("    {\"connections\": %u, \"batch_window_us\": %llu,"
                  " \"qps\": %.1f, \"rows_per_sec\": %.1f,"
                  " \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f,"
                  " \"mean_us\": %.1f, \"bytes_per_request\": %.1f,"
                  " \"requests\": %llu, \"errors\": %llu,"
                  " \"mismatches\": %llu, \"batches\": %llu,"
                  " \"batch_size_hist\": %s}%s\n",
                  connections, static_cast<unsigned long long>(window_us),
                  r.qps, r.rows_per_sec, r.p50_us, r.p99_us, r.p999_us,
                  r.mean_us, r.bytes_per_request,
                  static_cast<unsigned long long>(r.requests),
                  static_cast<unsigned long long>(r.errors),
                  static_cast<unsigned long long>(r.mismatches), batches,
                  hist.c_str(), ++point < total_points ? "," : "");
    }
  }
  std::printf("  ],\n");
  std::printf("  \"bit_identity\": \"%s\"\n}\n",
              diverged ? "FAIL" : "pass");
  if (diverged) {
    std::fprintf(stderr,
                 "bench_serve: served predictions diverged from local"
                 " Model::predict (or transport errors occurred)\n");
    return 1;
  }
  return 0;
}
