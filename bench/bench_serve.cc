// Serving bench (ISSUE 8 acceptance): a closed-loop load generator over
// real localhost TCP against the epoll prediction server, sweeping
// concurrency x batch window. One machine-readable JSON object on stdout
// (see bench/README.md): per sweep point {connections, batch_window_us,
// qps, rows_per_sec, p50/p99/p999 latency, bytes/request} plus the
// server's batch-size histogram (GET /stats), which is the evidence that
// rows from concurrent connections actually coalesce into blocked
// FlatEnsemble traversals.
//
// Every sweep point is gated on bit-identity: each served prediction is
// compared bitwise against local Model::predict inside the harness, and
// any mismatch or transport error exits non-zero -- throughput numbers
// from a diverging server are worthless, so they are never printed.
//
// After the sweep, an overload leg re-runs the harness against a server
// with tight admission watermarks at an offered load far past saturation,
// with a concurrent /reload churn thread: it demonstrates load shedding
// (503s, zero transport errors), bounded reload stall on the loop, and
// bit-identity for every admitted prediction through hot swaps.
//
//   ./bench_serve [--quick]
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/client.h"
#include "serve/model_slot.h"
#include "serve/server.h"
#include "sim/json.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

using namespace booster;

namespace {

// Clone through the serializer: Model is move-only and the bench keeps
// its local copy for the expected-prediction vector.
gbdt::Model clone_model(const gbdt::Model& model) {
  std::stringstream buf;
  gbdt::save_model(model, buf);
  return gbdt::load_model(buf);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = sim::parse_run_options(argc, argv);

  // The paper's IoT shape (binary sensor features dominate) is the
  // serving-friendliest of the Table III set; sized down so the bench is
  // a latency measurement, not a training one.
  workloads::DatasetSpec spec = workloads::spec_by_name("IoT");
  const std::uint64_t records = opt.quick ? 4000 : 20000;
  const gbdt::Dataset raw = workloads::synthesize(spec, records, /*seed=*/11);
  const gbdt::BinnedDataset binned = gbdt::Binner().bin(raw);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = opt.quick ? 16 : 64;
  tcfg.max_depth = 6;
  tcfg.loss = spec.loss;
  const gbdt::TrainResult trained = gbdt::Trainer(tcfg).train(binned);

  std::vector<double> expected(binned.num_records());
  for (std::uint64_t r = 0; r < binned.num_records(); ++r) {
    expected[r] = trained.model.predict(binned, r);
  }

  const std::vector<std::uint32_t> connection_points =
      opt.quick ? std::vector<std::uint32_t>{1, 4}
                : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
  const std::vector<std::uint64_t> window_points =
      opt.quick ? std::vector<std::uint64_t>{0, 200}
                : std::vector<std::uint64_t>{0, 200, 1000};
  const std::uint32_t requests_per_connection = opt.quick ? 50 : 400;
  const std::uint32_t rows_per_request = 8;

  std::printf("{\n  \"bench\": \"serve\",\n");
  std::printf("  \"workload\": \"%s\",\n", spec.name.c_str());
  std::printf("  \"records\": %llu,\n",
              static_cast<unsigned long long>(records));
  std::printf("  \"trees\": %u,\n", tcfg.num_trees);
  std::printf("  \"rows_per_request\": %u,\n", rows_per_request);
  std::printf("  \"requests_per_connection\": %u,\n", requests_per_connection);
  std::printf("  \"points\": [\n");

  bool diverged = false;
  std::size_t point = 0;
  const std::size_t total_points =
      connection_points.size() * window_points.size();
  for (const std::uint64_t window_us : window_points) {
    for (const std::uint32_t connections : connection_points) {
      // Fresh server per point: the /stats batch histogram then describes
      // exactly this (connections, window) combination.
      serve::ModelSlot slot;
      slot.install(clone_model(trained.model));
      serve::ServerConfig scfg;
      scfg.batch_window = std::chrono::microseconds(window_us);
      serve::Server server(scfg, &slot, binned);
      std::thread loop([&server] { server.run(); });

      serve::LoadConfig load;
      load.port = server.port();
      load.connections = connections;
      load.requests_per_connection = requests_per_connection;
      load.rows_per_request = rows_per_request;
      const serve::LoadResult r = serve::run_closed_loop(load, raw, expected);

      // The histogram must be read before stop(): /stats runs on-loop.
      serve::BlockingClient stats_client;
      std::string hist = "[]";
      unsigned long long batches = 0;
      if (stats_client.connect(server.port())) {
        serve::Response resp;
        std::string parse_error;
        std::optional<sim::Json> stats;
        if (stats_client.request("GET", "/stats", "", &resp) &&
            resp.status == 200) {
          stats = sim::Json::parse(resp.body, &parse_error);
        }
        if (stats.has_value()) {
          if (const sim::Json* h = stats->find("batch_size_hist")) {
            hist = h->dump();
            while (!hist.empty() &&
                   (hist.back() == '\n' || hist.back() == ' ')) {
              hist.pop_back();
            }
          }
          if (const sim::Json* b = stats->find("batches")) {
            batches = static_cast<unsigned long long>(b->as_double());
          }
        }
      }
      server.stop();
      loop.join();

      if (r.errors != 0 || r.mismatches != 0) diverged = true;
      std::printf("    {\"connections\": %u, \"batch_window_us\": %llu,"
                  " \"qps\": %.1f, \"rows_per_sec\": %.1f,"
                  " \"p50_us\": %.1f, \"p99_us\": %.1f, \"p999_us\": %.1f,"
                  " \"mean_us\": %.1f, \"bytes_per_request\": %.1f,"
                  " \"requests\": %llu, \"errors\": %llu,"
                  " \"mismatches\": %llu, \"batches\": %llu,"
                  " \"batch_size_hist\": %s}%s\n",
                  connections, static_cast<unsigned long long>(window_us),
                  r.qps, r.rows_per_sec, r.p50_us, r.p99_us, r.p999_us,
                  r.mean_us, r.bytes_per_request,
                  static_cast<unsigned long long>(r.requests),
                  static_cast<unsigned long long>(r.errors),
                  static_cast<unsigned long long>(r.mismatches), batches,
                  hist.c_str(), ++point < total_points ? "," : "");
    }
  }
  std::printf("  ],\n");

  // ---------------------------------------------------------- overload leg
  // One server with watermarks sized so a pipelined open-ish load must
  // shed: first a at-saturation baseline (closed loop, depth 1, below the
  // watermarks), then 2x+ the saturation concurrency at pipeline depth 8
  // while a side thread hammers /reload with the same model container.
  bool overload_failed = false;
  {
    serve::ModelSlot slot;
    slot.install(clone_model(trained.model));
    serve::ServerConfig scfg;
    scfg.shed_requests_watermark = 16;
    scfg.shed_rows_watermark = 16 * rows_per_request;
    serve::Server server(scfg, &slot, binned);
    std::thread loop([&server] { server.run(); });

    serve::LoadConfig sat;
    sat.port = server.port();
    sat.connections = 4;
    sat.requests_per_connection = requests_per_connection;
    sat.rows_per_request = rows_per_request;
    const serve::LoadResult sat_r = serve::run_closed_loop(sat, raw, expected);

    const std::string reload_path = "/tmp/bench_serve_overload.model";
    const bool reload_saved =
        gbdt::save_model_checked_file(trained.model, reload_path);
    std::atomic<bool> reloads_done{false};
    std::thread reloader([&] {
      if (!reload_saved) return;
      serve::BlockingClient c;
      if (!c.connect(server.port())) return;
      while (!reloads_done.load(std::memory_order_relaxed)) {
        serve::Response resp;
        // 409 (a previous reload still in flight) is expected churn here;
        // only a dead connection ends the thread early.
        if (!c.request("POST", "/reload", reload_path, &resp)) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    serve::LoadConfig over = sat;
    over.connections = opt.quick ? 8 : 16;
    over.pipeline_depth = 8;
    const serve::LoadResult over_r =
        serve::run_closed_loop(over, raw, expected);
    reloads_done.store(true, std::memory_order_relaxed);
    reloader.join();

    double reloads = 0.0, stall_max_us = 0.0;
    serve::BlockingClient stats_client;
    if (stats_client.connect(server.port())) {
      serve::Response resp;
      std::string parse_error;
      if (stats_client.request("GET", "/stats", "", &resp) &&
          resp.status == 200) {
        if (const auto stats = sim::Json::parse(resp.body, &parse_error)) {
          if (const sim::Json* v = stats->find("reloads")) {
            reloads = v->as_double();
          }
          if (const sim::Json* v = stats->find("reload_stall_us_max")) {
            stall_max_us = v->as_double();
          }
        }
      }
    }
    server.stop();
    loop.join();
    std::remove(reload_path.c_str());

    const std::uint64_t offered =
        static_cast<std::uint64_t>(over.connections) *
        over.requests_per_connection;
    const double shed_rate =
        offered > 0 ? static_cast<double>(over_r.shed) /
                          static_cast<double>(offered)
                    : 0.0;
    const double p999_ratio =
        sat_r.p999_us > 0.0 ? over_r.p999_us / sat_r.p999_us : 0.0;
    std::printf("  \"overload\": {\"saturation_connections\": %u,"
                " \"overload_connections\": %u, \"pipeline_depth\": %u,\n",
                sat.connections, over.connections, over.pipeline_depth);
    std::printf("    \"saturation_qps\": %.1f, \"saturation_p999_us\": %.1f,"
                " \"overload_qps\": %.1f, \"overload_p999_us\": %.1f,\n",
                sat_r.qps, sat_r.p999_us, over_r.qps, over_r.p999_us);
    std::printf("    \"admitted\": %llu, \"shed\": %llu,"
                " \"shed_rate\": %.3f, \"p999_ratio\": %.2f,"
                " \"p999_bounded_5x\": \"%s\",\n",
                static_cast<unsigned long long>(over_r.requests),
                static_cast<unsigned long long>(over_r.shed), shed_rate,
                p999_ratio, p999_ratio <= 5.0 ? "pass" : "FAIL");
    std::printf("    \"reloads\": %.0f, \"reload_stall_us_max\": %.1f,"
                " \"errors\": %llu, \"mismatches\": %llu},\n",
                reloads, stall_max_us,
                static_cast<unsigned long long>(sat_r.errors + over_r.errors),
                static_cast<unsigned long long>(sat_r.mismatches +
                                                over_r.mismatches));

    // Gates: clean transport + bit-identity in both runs, shedding actually
    // engaged under overload, and (when reloads landed) the on-loop stall
    // stayed far under a batch window. The 5x p999 bound is reported but
    // not gated: single-core CI boxes make tail ratios too noisy to fail
    // the build on.
    overload_failed = sat_r.errors != 0 || sat_r.mismatches != 0 ||
                      over_r.errors != 0 || over_r.mismatches != 0 ||
                      over_r.shed == 0 ||
                      (reloads > 0.0 && stall_max_us >= 10000.0);
  }

  std::printf("  \"bit_identity\": \"%s\"\n}\n",
              diverged ? "FAIL" : "pass");
  if (overload_failed) {
    std::fprintf(stderr,
                 "bench_serve: overload leg failed (transport errors,"
                 " divergence, no shedding at 2x saturation, or reload"
                 " stall >= 10ms on the event loop)\n");
    return 1;
  }
  if (diverged) {
    std::fprintf(stderr,
                 "bench_serve: served predictions diverged from local"
                 " Model::predict (or transport errors occurred)\n");
    return 1;
  }
  return 0;
}
