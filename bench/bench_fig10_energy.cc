// Regenerates Fig 10: SRAM and DRAM access energy of Ideal 32-core,
// Ideal GPU, and Booster, averaged over the benchmarks and normalized to
// Ideal 32-core. Expected shape: GPU SRAM energy above CPU (96 KB banked
// Shared Memory vs 32 KB L1D); Booster below both (2 KB SRAMs); CPU and GPU
// DRAM energy identical (same blocks); Booster's DRAM energy lower via the
// redundant column format.
#include <cstdio>

#include <vector>

#include "baselines/cpu_like.h"
#include "common.h"
#include "energy/energy_model.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 10: SRAM and DRAM energy (normalized)",
                      "Booster paper, Section V-D, Figure 10");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel ideal_gpu(baselines::ideal_gpu_params());
  const core::BoosterModel booster(bench::default_booster_config());
  const energy::EnergyModel em;

  std::vector<double> gpu_sram, gpu_dram, booster_sram, booster_dram;
  for (const auto& w : workloads) {
    const auto cpu = em.energy(ideal_cpu.train_activity(w.trace, w.info));
    const auto gpu = em.energy(ideal_gpu.train_activity(w.trace, w.info));
    const auto bst = em.energy(booster.train_activity(w.trace, w.info));
    gpu_sram.push_back(gpu.sram_joules / cpu.sram_joules);
    gpu_dram.push_back(gpu.dram_joules / cpu.dram_joules);
    booster_sram.push_back(bst.sram_joules / cpu.sram_joules);
    booster_dram.push_back(bst.dram_joules / cpu.dram_joules);
  }

  util::Table table({"System", "SRAM energy (norm)", "DRAM energy (norm)"});
  table.add_row({"Ideal 32-core", "1.00", "1.00"});
  table.add_row({"Ideal GPU", util::fmt(util::mean(gpu_sram)),
                 util::fmt(util::mean(gpu_dram))});
  table.add_row({"Booster", util::fmt(util::mean(booster_sram)),
                 util::fmt(util::mean(booster_dram))});
  table.print();
  std::printf("\nPaper reference: Booster strictly lower in both; GPU SRAM"
              " energy ~2.6x CPU; CPU and GPU DRAM identical.\n");
  return 0;
}
