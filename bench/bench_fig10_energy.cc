// Regenerates Fig 10: SRAM and DRAM access energy of Ideal 32-core,
// Ideal GPU, and Booster, averaged over the benchmarks and normalized to
// Ideal 32-core. Expected shape: GPU SRAM energy above CPU (96 KB banked
// Shared Memory vs 32 KB L1D); Booster below both (2 KB SRAMs); CPU and GPU
// DRAM energy identical (same blocks); Booster's DRAM energy lower via the
// redundant column format.
//
// Formatting shim over the "fig10_energy" scenario
// (bench/scenarios/fig10_energy.json): cells carry each model's
// perf::Activity, converted to joules here; pass --json for the canonical
// cell dump.
#include <cstdio>

#include <vector>

#include "energy/energy_model.h"
#include "sim/library.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig10_energy");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order: ideal-32core, ideal-gpu, booster.
  const energy::EnergyModel em;
  std::vector<double> gpu_sram, gpu_dram, booster_sram, booster_dram;
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const auto cpu = em.energy(res->cell(0, w, 0).activity);
    const auto gpu = em.energy(res->cell(0, w, 1).activity);
    const auto bst = em.energy(res->cell(0, w, 2).activity);
    gpu_sram.push_back(gpu.sram_joules / cpu.sram_joules);
    gpu_dram.push_back(gpu.dram_joules / cpu.dram_joules);
    booster_sram.push_back(bst.sram_joules / cpu.sram_joules);
    booster_dram.push_back(bst.dram_joules / cpu.dram_joules);
  }

  util::Table table({"System", "SRAM energy (norm)", "DRAM energy (norm)"});
  table.add_row({"Ideal 32-core", "1.00", "1.00"});
  table.add_row({"Ideal GPU", util::fmt(util::mean(gpu_sram)),
                 util::fmt(util::mean(gpu_dram))});
  table.add_row({"Booster", util::fmt(util::mean(booster_sram)),
                 util::fmt(util::mean(booster_dram))});
  table.print();
  std::printf("\nPaper reference: Booster strictly lower in both; GPU SRAM"
              " energy ~2.6x CPU; CPU and GPU DRAM identical.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
