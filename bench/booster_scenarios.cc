// Declarative experiment driver: runs any scenario .json file through
// sim::ScenarioRunner, with no per-experiment code. The checked-in paper
// figures live in bench/scenarios/ (each is `dump` of a builtin spec; see
// bench/README.md "Scenario files").
//
//   booster_scenarios run <spec.json> [--quick] [--threads N]
//   booster_scenarios run-builtin <name> [--quick] [--threads N]
//   booster_scenarios --list
//   booster_scenarios dump <name>
//
// `run` prints the provenance header, a generic per-cell table, and the
// canonical JSON block (sim::ScenarioResult::to_json) -- the same object
// the ported bench binaries emit under --json, so outputs are diffable.
#include <cstdio>
#include <cstring>
#include <string>

#include "sim/library.h"
#include "sim/runner.h"

using namespace booster;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  booster_scenarios run <spec.json> [--quick] [--threads N]\n"
               "  booster_scenarios run-builtin <name> [--quick]"
               " [--threads N]\n"
               "  booster_scenarios --list\n"
               "  booster_scenarios dump <name>\n");
  return 2;
}

int list_scenarios() {
  for (const auto& s : sim::builtin_scenarios()) {
    std::printf("%-22s %s\n", s.name.c_str(), s.title.c_str());
  }
  return 0;
}

int dump_scenario(const std::string& name) {
  const auto spec = sim::builtin_scenario(name);
  if (!spec) {
    std::fprintf(stderr, "unknown builtin scenario \"%s\" (see --list)\n",
                 name.c_str());
    return 1;
  }
  std::fputs(spec->to_json().dump().c_str(), stdout);
  return 0;
}

int run_scenario(const sim::ScenarioSpec& spec, const sim::RunOptions& opt) {
  sim::print_header(spec.title.empty() ? spec.name : spec.title,
                    spec.paper_ref.empty() ? "(no paper reference)"
                                           : spec.paper_ref);
  std::string error;
  const auto result = sim::ScenarioRunner().run(spec, opt, &error);
  if (!result) {
    std::fprintf(stderr, "scenario \"%s\": %s\n", spec.name.c_str(),
                 error.c_str());
    return 1;
  }
  if (!result->cells.empty()) {
    result->print_table();
    std::printf("\n");
  }
  std::fputs(result->to_json().dump().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];

  if (command == "--list" || command == "list") return list_scenarios();

  if (command == "dump") {
    if (argc < 3) return usage();
    return dump_scenario(argv[2]);
  }

  const sim::RunOptions opt = sim::parse_run_options(argc, argv);

  if (command == "run") {
    if (argc < 3 || argv[2][0] == '-') return usage();
    std::string error;
    const auto spec = sim::ScenarioSpec::from_file(argv[2], &error);
    if (!spec) {
      std::fprintf(stderr, "%s\n", error.c_str());
      return 1;
    }
    return run_scenario(*spec, opt);
  }

  if (command == "run-builtin") {
    if (argc < 3) return usage();
    const auto spec = sim::builtin_scenario(argv[2]);
    if (!spec) {
      std::fprintf(stderr, "unknown builtin scenario \"%s\" (see --list)\n",
                   argv[2]);
      return 1;
    }
    return run_scenario(*spec, opt);
  }

  return usage();
}
