// Closed-loop co-simulation bench (ISSUE 2 acceptance): two experiments,
// emitted as one machine-readable JSON object (see bench/README.md).
//
//   1. Rate-matching sweep (paper §III-B): step-1 co-simulation of a
//      64-field record scan while sweeping the BU count. The
//      compute-bound fraction must cross ~0.5 near the paper's 3200-BU
//      design point (exactly where the worked example sizes the array for
//      ~400 GB/s); the crossing is located by linear interpolation.
//
//   2. Model-vs-cycle-sim agreement: per-step training times of the
//      analytic BoosterModel vs the CycleCalibratedBoosterModel on the
//      sampled fraud and Flight workloads. The per-step ratio is the
//      benchable disagreement number; the test suite asserts it within
//      15% (test_cycle_calibrated.cc), this bench archives the trend.
//
//   ./bench_closed_loop [--quick]
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/cycle_sim.h"
#include "perf/cycle_calibrated.h"
#include "sim/runner.h"
#include "sim/scenario.h"
#include "util/thread_pool.h"
#include "workloads/synth.h"

using namespace booster;

int main(int argc, char** argv) {
  const auto opt = sim::parse_run_options(argc, argv);
  // The sweep is cheap and its compute-bound fraction must reflect steady
  // state (short runs overweight the pipeline-fill backlog transient), so
  // it does not shrink under --quick.
  const std::uint64_t sweep_records = 24000;

  // --- Experiment 1: BU-count sweep on the paper's worked example shape.
  workloads::DatasetSpec sweep_spec;
  sweep_spec.name = "dse64";
  sweep_spec.nominal_records = sweep_records;
  sweep_spec.numeric_fields = 64;
  sweep_spec.loss = "squared";
  const auto sweep_data =
      gbdt::Binner().bin(workloads::synthesize(sweep_spec, sweep_records, 3));
  std::vector<std::uint32_t> rows(sweep_records);
  std::iota(rows.begin(), rows.end(), 0);

  std::printf("{\n  \"bench\": \"closed_loop\",\n");
  {
    const core::CycleSim probe{core::BoosterConfig{}, memsim::DramConfig{}};
    std::printf("  \"accel_clock_hz\": %.3e,\n  \"mem_clock_hz\": %.3e,\n",
                probe.config().clock_hz, probe.dram().clock_hz);
    std::printf("  \"clock_ratio\": %.6f,\n", probe.clock_ratio());
  }

  std::printf("  \"bu_sweep\": [\n");
  double prev_bus = 0.0, prev_frac = 0.0, crossing_bus = 0.0;
  const std::uint32_t cluster_points[] = {10, 20, 30, 40, 45, 48,
                                          50, 55, 65, 80};
  for (std::size_t i = 0; i < std::size(cluster_points); ++i) {
    core::BoosterConfig cfg;
    cfg.clusters = cluster_points[i];
    const core::CycleSim sim{cfg, memsim::DramConfig{}};
    const auto r = sim.run_step1(sweep_data, rows);
    const double bus = cfg.num_bus();
    std::printf("    {\"clusters\": %u, \"bus\": %.0f,"
                " \"compute_bound_fraction\": %.4f,"
                " \"achieved_gbps\": %.1f, \"records_per_cycle\": %.3f,"
                " \"avg_queue_occupancy\": %.2f,"
                " \"enqueue_rejections\": %llu}%s\n",
                cluster_points[i], bus, r.compute_bound_fraction,
                r.achieved_bandwidth / 1e9, r.records_per_cycle,
                r.avg_queue_occupancy,
                static_cast<unsigned long long>(r.enqueue_rejections),
                i + 1 < std::size(cluster_points) ? "," : "");
    if (crossing_bus == 0.0 && prev_frac > 0.5 &&
        r.compute_bound_fraction <= 0.5) {
      // Linear interpolation of the 0.5 crossing between sweep points.
      crossing_bus = prev_bus + (prev_frac - 0.5) /
                                    (prev_frac - r.compute_bound_fraction) *
                                    (bus - prev_bus);
    }
    prev_bus = bus;
    prev_frac = r.compute_bound_fraction;
  }
  std::printf("  ],\n  \"rate_matching_crossing_bus\": %.0f,\n", crossing_bus);
  std::printf("  \"paper_design_bus\": 3200,\n");

  // --- Experiment 2: analytic vs cycle-calibrated per-step times.
  workloads::RunnerConfig rcfg;
  if (opt.quick) sim::apply_quick(&rcfg);
  const core::BoosterModel analytic(sim::calibrated_booster_config());
  // The per-(step, depth, octave) replay co-sims fan out over a pool --
  // this bench is a single "cell", so it owns the parallelism.
  const unsigned replay_threads =
      opt.threads != 0 ? opt.threads : util::ThreadPool::default_threads();
  const perf::CycleCalibratedBoosterModel cycle(
      sim::calibrated_booster_config(), memsim::DramConfig{}, {}, "",
      replay_threads);

  std::printf("  \"workloads\": [\n");
  const std::vector<workloads::DatasetSpec> specs = {
      workloads::fraud_spec(), workloads::spec_by_name("Flight")};
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto w = workloads::run_workload(specs[i], rcfg);
    const auto a = analytic.train_cost(w.trace, w.info);
    const auto c = cycle.train_cost(w.trace, w.info);
    double max_dis = 0.0;
    std::printf("    {\"name\": \"%s\", \"steps\": [\n", w.spec.name.c_str());
    const trace::StepKind kinds[] = {
        trace::StepKind::kHistogram, trace::StepKind::kPartition,
        trace::StepKind::kTraversal, trace::StepKind::kSplitSelect};
    for (std::size_t k = 0; k < std::size(kinds); ++k) {
      const double ratio = a[kinds[k]] > 0.0 ? c[kinds[k]] / a[kinds[k]] : 1.0;
      if (kinds[k] != trace::StepKind::kSplitSelect) {
        max_dis = std::max(max_dis, std::abs(ratio - 1.0));
      }
      std::printf("      {\"step\": \"%s\", \"analytic_s\": %.6f,"
                  " \"cycle_s\": %.6f, \"ratio\": %.4f}%s\n",
                  trace::step_name(kinds[k]), a[kinds[k]], c[kinds[k]], ratio,
                  k + 1 < std::size(kinds) ? "," : "");
    }
    std::printf("    ], \"total_analytic_s\": %.6f, \"total_cycle_s\": %.6f,"
                " \"max_step_disagreement\": %.4f}%s\n",
                a.total(), c.total(), max_dis,
                i + 1 < specs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
