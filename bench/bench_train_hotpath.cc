// Training hot-path microbench (ISSUE 1 acceptance): times the full GBDT
// training loop on synthetic fraud- and flight-shaped workloads, comparing
//   * seed    -- the pre-refactor hot path, faithfully re-created here:
//                per-field column-gather histograms, a fresh Histogram
//                allocation per frontier node, per-node left/right row
//                vectors, everything single-threaded;
//   * new @1T -- the refactored trainer forced to one thread (isolates the
//                layout + pooling + arena win);
//   * new @NT -- the refactored trainer at the requested thread count.
// Also cross-checks that the seed loop and the new trainer grow
// structurally identical trees, and emits one machine-readable JSON object
// (see bench/README.md) for the BENCH trajectory.
//
//   ./bench_train_hotpath [--quick] [--threads N] [--records N] [--trees N]
//
// --threads defaults to BOOSTER_THREADS, else 8.
#include <chrono>
#include <ctime>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <numeric>
#include <string>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/histogram.h"
#include "gbdt/hotpath.h"
#include "gbdt/split.h"
#include "gbdt/trainer.h"
#include "util/simd.h"
#include "util/thread_pool.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace {

using namespace booster;
using gbdt::BinnedDataset;
using gbdt::BinStats;
using gbdt::Histogram;
using gbdt::Model;
using gbdt::Tree;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Process CPU seconds: robust against scheduler noise on shared machines
/// for the single-threaded legs (for the multi-threaded leg, wall time is
/// the metric that matters).
double cpu_seconds() {
  timespec ts{};
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) + 1e-9 * static_cast<double>(ts.tv_nsec);
}

/// The seed trainer's hot path, verbatim in shape: one full gather pass per
/// field per node, fresh Histogram + two row vectors per frontier node, and
/// a serial step-5 traversal. Used as the bench baseline only.
Model train_seed_reference(const BinnedDataset& data,
                           const gbdt::TrainerConfig& cfg) {
  const std::uint64_t n = data.num_records();
  auto loss = gbdt::make_loss(cfg.loss);

  double label_mean = 0.0;
  for (float y : data.labels()) label_mean += y;
  label_mean /= static_cast<double>(n);
  const double base_score = loss->base_score(label_mean);

  std::vector<float> preds(n, static_cast<float>(base_score));
  std::vector<gbdt::GradientPair> gradients(n);
  for (std::uint64_t r = 0; r < n; ++r) {
    gradients[r] = loss->gradients(preds[r], data.labels()[r]);
  }

  const gbdt::SplitFinder finder(cfg.split);
  Model model(base_score, gbdt::make_loss(cfg.loss));

  std::vector<std::uint32_t> all_rows(n);
  std::iota(all_rows.begin(), all_rows.end(), 0u);

  struct Node {
    std::int32_t tree_node = 0;
    std::int32_t depth = 0;
    std::vector<std::uint32_t> rows;
    Histogram hist;
    BinStats totals;
  };

  for (std::uint32_t t = 0; t < cfg.num_trees; ++t) {
    Tree tree;
    std::deque<Node> frontier;
    {
      Node root;
      root.tree_node = tree.root();
      root.rows = all_rows;
      root.hist = Histogram(data);
      root.hist.build_reference(data, root.rows, gradients);
      root.totals = root.hist.totals();
      frontier.push_back(std::move(root));
    }
    while (!frontier.empty()) {
      Node node = std::move(frontier.front());
      frontier.pop_front();
      auto make_leaf = [&](const BinStats& totals) {
        tree.set_leaf_weight(
            node.tree_node,
            cfg.learning_rate * gbdt::leaf_weight(totals, cfg.split.lambda));
      };
      if (node.depth >= static_cast<std::int32_t>(cfg.max_depth) ||
          node.rows.size() < cfg.min_node_records) {
        make_leaf(node.totals);
        continue;
      }
      const auto split = finder.find_best(node.hist, data);
      if (!split) {
        make_leaf(node.totals);
        continue;
      }
      std::vector<std::uint32_t> left_rows;
      std::vector<std::uint32_t> right_rows;
      left_rows.reserve(split->left.count_u64() + 1);
      right_rows.reserve(split->right.count_u64() + 1);
      const auto& col = data.column(split->field);
      for (const std::uint32_t r : node.rows) {
        (gbdt::split_goes_left(*split, col[r]) ? left_rows : right_rows)
            .push_back(r);
      }
      const auto [left_id, right_id] = tree.split_leaf(node.tree_node, *split);
      const std::int32_t child_depth = node.depth + 1;
      if (child_depth >= static_cast<std::int32_t>(cfg.max_depth)) {
        tree.set_leaf_weight(
            left_id, cfg.learning_rate *
                         gbdt::leaf_weight(split->left, cfg.split.lambda));
        tree.set_leaf_weight(
            right_id, cfg.learning_rate *
                          gbdt::leaf_weight(split->right, cfg.split.lambda));
        continue;
      }
      const bool left_smaller = left_rows.size() <= right_rows.size();
      Node small, large;
      small.tree_node = left_smaller ? left_id : right_id;
      large.tree_node = left_smaller ? right_id : left_id;
      small.depth = large.depth = child_depth;
      small.rows = left_smaller ? std::move(left_rows) : std::move(right_rows);
      large.rows = left_smaller ? std::move(right_rows) : std::move(left_rows);
      small.hist = Histogram(data);
      small.hist.build_reference(data, small.rows, gradients);
      small.totals = small.hist.totals();
      large.hist.subtract_from(node.hist, small.hist);
      large.totals = large.hist.totals();
      frontier.push_back(std::move(small));
      frontier.push_back(std::move(large));
    }
    for (std::uint64_t r = 0; r < n; ++r) {
      std::int32_t id = tree.root();
      while (!tree.node(id).is_leaf) {
        const gbdt::TreeNode& nd = tree.node(id);
        id = tree.goes_left(id, data.bin(nd.field, r)) ? nd.left : nd.right;
      }
      preds[r] += static_cast<float>(tree.node(id).weight);
      gradients[r] = loss->gradients(preds[r], data.labels()[r]);
    }
    // The seed trainer evaluated the mean training loss after every tree
    // (step 6's early-stop signal); keep the baseline faithful.
    double total_loss = 0.0;
    for (std::uint64_t r = 0; r < n; ++r) {
      total_loss += loss->value(preds[r], data.labels()[r]);
    }
    (void)total_loss;
    model.add_tree(std::move(tree));
  }
  return model;
}

bool models_structurally_equal(const Model& a, const Model& b) {
  if (a.num_trees() != b.num_trees()) return false;
  for (std::uint32_t t = 0; t < a.num_trees(); ++t) {
    const Tree& x = a.trees()[t];
    const Tree& y = b.trees()[t];
    if (x.num_nodes() != y.num_nodes()) return false;
    for (std::uint32_t id = 0; id < x.num_nodes(); ++id) {
      const auto& p = x.node(static_cast<std::int32_t>(id));
      const auto& q = y.node(static_cast<std::int32_t>(id));
      if (p.is_leaf != q.is_leaf || p.field != q.field || p.kind != q.kind ||
          p.threshold_bin != q.threshold_bin ||
          p.default_left != q.default_left || p.left != q.left ||
          p.right != q.right) {
        return false;
      }
    }
  }
  return true;
}

struct Args {
  bool quick = false;
  unsigned threads = 0;  // 0 -> BOOSTER_THREADS else 8
  std::uint64_t records = 60000;
  std::uint32_t trees = 20;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      a.threads = v > 0 ? static_cast<unsigned>(v) : 0;  // <=0: default
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v > 0) a.records = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--trees") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) a.trees = static_cast<std::uint32_t>(v);
    }
  }
  if (a.quick) {
    a.records = 12000;
    a.trees = 8;
  }
  // Thread-count precedence: explicit --threads, else BOOSTER_THREADS,
  // else 8 (mirrors the library's config > env > auto resolution).
  if (a.threads == 0) {
    if (const char* env = std::getenv("BOOSTER_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) a.threads = static_cast<unsigned>(v);
    }
  }
  if (a.threads == 0) a.threads = 8;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);

  std::vector<workloads::DatasetSpec> specs = {
      workloads::fraud_spec(), workloads::spec_by_name("Flight")};

  std::printf("{\n  \"bench\": \"train_hotpath\",\n  \"threads\": %u,\n"
              "  \"simd\": \"%s\",\n"
              "  \"records\": %llu,\n  \"trees\": %u,\n  \"workloads\": [\n",
              args.threads,
              booster::util::simd::level_name(booster::util::simd::active()),
              static_cast<unsigned long long>(args.records), args.trees);

  for (std::size_t w = 0; w < specs.size(); ++w) {
    const auto& spec = specs[w];
    const auto raw = workloads::synthesize(spec, args.records, /*seed=*/42);
    const auto data = gbdt::Binner().bin(raw);

    gbdt::TrainerConfig cfg;
    cfg.num_trees = args.trees;
    cfg.max_depth = 6;
    cfg.loss = spec.loss;

    // Warm-up + correctness cross-check on a small prefix.
    gbdt::TrainerConfig check_cfg = cfg;
    check_cfg.num_trees = std::min<std::uint32_t>(3, args.trees);
    check_cfg.num_threads = args.threads;
    const auto check_new = gbdt::Trainer(check_cfg).train(data);
    const auto check_seed = train_seed_reference(data, check_cfg);
    const bool models_match =
        models_structurally_equal(check_new.model, check_seed);

    // Alternate the three legs across repetitions and keep the fastest run
    // of each, so scheduler noise and cache-warming order don't bias the
    // comparison.
    gbdt::TrainerConfig cfg1 = cfg;
    cfg1.num_threads = 1;
    gbdt::TrainerConfig cfgn = cfg;
    cfgn.num_threads = args.threads;

    double seed_s = 1e30, new1_s = 1e30, newn_s = 1e30;
    double seed_cpu = 1e30, new1_cpu = 1e30;
    std::uint32_t seed_trees = 0;
    gbdt::HotPathStats newn_stats;
    for (int rep = 0; rep < (args.quick ? 1 : 3); ++rep) {
      auto t0 = std::chrono::steady_clock::now();
      double c0 = cpu_seconds();
      const auto seed_model = train_seed_reference(data, cfg);
      seed_cpu = std::min(seed_cpu, cpu_seconds() - c0);
      seed_s = std::min(seed_s, seconds_since(t0));
      seed_trees = seed_model.num_trees();

      t0 = std::chrono::steady_clock::now();
      c0 = cpu_seconds();
      const auto new1 = gbdt::Trainer(cfg1).train(data);
      new1_cpu = std::min(new1_cpu, cpu_seconds() - c0);
      new1_s = std::min(new1_s, seconds_since(t0));

      t0 = std::chrono::steady_clock::now();
      const auto newn = gbdt::Trainer(cfgn).train(data);
      newn_s = std::min(newn_s, seconds_since(t0));
      newn_stats = newn.hot_path;
    }

    std::printf(
        "    {\"name\": \"%s\", \"fields\": %u, \"trained_trees\": %u,\n"
        "     \"seed_serial_s\": %.4f, \"new_1t_s\": %.4f, \"new_%ut_s\": "
        "%.4f,\n"
        "     \"seed_serial_cpu_s\": %.4f, \"new_1t_cpu_s\": %.4f,\n"
        "     \"speedup_1t\": %.2f, \"speedup_1t_cpu\": %.2f, "
        "\"speedup_%ut\": %.2f,\n"
        "     \"models_match_seed\": %s,\n"
        "     \"histogram_allocations\": %llu, \"histogram_acquires\": %llu,\n"
        "     \"arena_bytes\": %llu, \"row_major_matrix_bytes\": %llu}%s\n",
        spec.name.c_str(), data.num_fields(), seed_trees, seed_s,
        new1_s, args.threads, newn_s, seed_cpu, new1_cpu,
        seed_s / new1_s, seed_cpu / new1_cpu, args.threads,
        seed_s / newn_s, models_match ? "true" : "false",
        static_cast<unsigned long long>(newn_stats.histogram_allocations),
        static_cast<unsigned long long>(newn_stats.histogram_acquires),
        static_cast<unsigned long long>(newn_stats.arena_bytes),
        static_cast<unsigned long long>(newn_stats.row_major_matrix_bytes),
        w + 1 < specs.size() ? "," : "");
  }
  std::printf("  ]\n}\n");
  return 0;
}
