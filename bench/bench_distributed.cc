// Distributed-training bench (ISSUE 5): times gbdt::DistributedTrainer
// across the transport matrix (loopback / file / socket / tcp x world
// sizes) against the in-process gbdt::Trainer on a fraud-shaped workload,
// and cross-checks the subsystem's core contract on every leg -- *bit-
// identical* models, losses, and predictions, whatever the transport. The
// wire traffic (messages, bytes, retransmits) and a codec microbench
// (serialize/deserialize cost per shard histogram) quantify what
// cross-process sharding pays over the in-process merge that
// bench_sharded measures. The elastic legs (ISSUE 6) run churn schedules
// -- kill / hang / late join -- over real localhost TCP and report what
// robustness costs: repartitions, adoptions, heartbeat traffic, and the
// measured time-to-detect a dead peer, still gated on bit-identity.
// Emits one machine-readable JSON object for the BENCH trajectory (see
// bench/README.md). Exits non-zero on any bit divergence.
//
//   ./bench_distributed [--quick] [--threads N] [--records N] [--trees N]
//                       [--shards K]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/distributed.h"
#include "gbdt/trainer.h"
#include "ipc/codec.h"
#include "ipc/world.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace {

using namespace booster;
using gbdt::Model;
using gbdt::Tree;

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool results_bit_identical(const gbdt::TrainResult& a,
                           const gbdt::TrainResult& b,
                           const gbdt::BinnedDataset& data) {
  if (a.model.num_trees() != b.model.num_trees()) return false;
  for (std::uint32_t t = 0; t < a.model.num_trees(); ++t) {
    const Tree& x = a.model.trees()[t];
    const Tree& y = b.model.trees()[t];
    if (x.num_nodes() != y.num_nodes()) return false;
    for (std::uint32_t id = 0; id < x.num_nodes(); ++id) {
      const auto& p = x.node(static_cast<std::int32_t>(id));
      const auto& q = y.node(static_cast<std::int32_t>(id));
      if (p.is_leaf != q.is_leaf || p.field != q.field || p.kind != q.kind ||
          p.threshold_bin != q.threshold_bin ||
          p.default_left != q.default_left || p.left != q.left ||
          p.right != q.right || p.depth != q.depth ||
          p.weight != q.weight || p.gain != q.gain) {
        return false;
      }
    }
  }
  for (std::size_t t = 0; t < a.tree_stats.size(); ++t) {
    if (a.tree_stats[t].train_loss != b.tree_stats[t].train_loss) return false;
  }
  for (std::uint64_t r = 0; r < data.num_records(); r += 101) {
    if (a.model.predict_raw(data, r) != b.model.predict_raw(data, r)) {
      return false;
    }
  }
  return true;
}

struct Args {
  bool quick = false;
  unsigned threads = 0;
  std::uint64_t records = 40000;
  std::uint32_t trees = 10;
  std::uint32_t shards = 8;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      a.quick = true;
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      a.threads = v > 0 ? static_cast<unsigned>(v) : 0;
    } else if (std::strcmp(argv[i], "--records") == 0 && i + 1 < argc) {
      const long long v = std::atoll(argv[++i]);
      if (v > 0) a.records = static_cast<std::uint64_t>(v);
    } else if (std::strcmp(argv[i], "--trees") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) a.trees = static_cast<std::uint32_t>(v);
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      const int v = std::atoi(argv[++i]);
      if (v > 0) a.shards = static_cast<std::uint32_t>(v);
    }
  }
  if (a.quick) {
    a.records = 10000;
    a.trees = 5;
  }
  if (a.threads == 0) {
    if (const char* env = std::getenv("BOOSTER_THREADS")) {
      const int v = std::atoi(env);
      if (v > 0) a.threads = static_cast<unsigned>(v);
    }
  }
  if (a.threads == 0) a.threads = 4;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  const auto spec = workloads::fraud_spec();
  const auto raw = workloads::synthesize(spec, args.records, /*seed=*/42);
  const auto data = gbdt::Binner().bin(raw);
  data.ensure_row_major();

  gbdt::DistributedConfig cfg;
  cfg.trainer.num_trees = args.trees;
  cfg.trainer.max_depth = 6;
  cfg.trainer.loss = spec.loss;
  cfg.trainer.num_shards = args.shards;
  cfg.trainer.num_threads = args.threads;

  auto t0 = std::chrono::steady_clock::now();
  const auto reference = gbdt::Trainer(cfg.trainer).train(data);
  const double reference_s = seconds_since(t0);

  std::printf("{\n  \"bench\": \"distributed\",\n  \"workload\": \"%s\","
              "\n  \"records\": %llu,\n  \"trees\": %u,\n  \"shards\": %u,"
              "\n  \"threads\": %u,\n  \"in_process_s\": %.4f,\n"
              "  \"legs\": [\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(args.records), args.trees,
              args.shards, args.threads, reference_s);

  const ipc::TransportKind kinds[] = {ipc::TransportKind::kLoopback,
                                      ipc::TransportKind::kFile,
                                      ipc::TransportKind::kSocket,
                                      ipc::TransportKind::kTcp};
  const std::uint32_t procs_list[] = {1, 2, 4};
  bool first = true;
  for (const auto kind : kinds) {
    for (const std::uint32_t procs : procs_list) {
      ipc::InProcessWorld world(kind, procs);
      std::vector<gbdt::DistributedStats> stats;
      t0 = std::chrono::steady_clock::now();
      const auto got = gbdt::train_in_process(cfg, world, data, nullptr,
                                              nullptr, nullptr, &stats);
      const double wall_s = seconds_since(t0);
      const bool identical = results_bit_identical(got, reference, data);

      std::uint64_t bytes_sent = 0;
      std::uint64_t messages = 0;
      std::uint64_t retransmits = 0;
      for (const auto& s : stats) {
        bytes_sent += s.transport.bytes_sent;
        messages += s.channel.messages_sent;
        retransmits += s.channel.retransmits;
      }
      std::printf("%s    {\"transport\": \"%s\", \"procs\": %u,"
                  " \"wall_s\": %.4f,\n"
                  "     \"bit_identical_to_in_process\": %s,"
                  " \"messages\": %llu, \"wire_bytes\": %llu,"
                  " \"retransmits\": %llu}",
                  first ? "" : ",\n", ipc::transport_kind_name(kind),
                  procs, wall_s, identical ? "true" : "false",
                  static_cast<unsigned long long>(messages),
                  static_cast<unsigned long long>(bytes_sent),
                  static_cast<unsigned long long>(retransmits));
      first = false;
      if (!identical) {
        std::printf("\n  ]\n}\n");
        std::fprintf(stderr,
                     "FATAL: distributed output diverged from the in-process"
                     " trainer (%s, %u procs)\n",
                     ipc::transport_kind_name(kind), procs);
        return 1;
      }
    }
  }
  std::printf("\n  ],\n");

  // Elastic legs: real localhost-TCP worlds driven by seeded churn
  // schedules. Probes what robustness costs and proves it costs no
  // correctness: repartitions/joins/adoptions, heartbeat traffic, the
  // measured time-to-detect a dead peer, and the same bit-identity gate.
  {
    struct ElasticLeg {
      std::uint32_t procs;
      const char* churn;
    };
    const ElasticLeg legs[] = {
        {2, ""},
        {2, "kill:1@1"},
        {4, "hang:2@1"},
        {4, "kill:1@1,join:5@2"},
    };
    std::printf("  \"elastic_tcp_legs\": [\n");
    bool first_leg = true;
    for (const auto& leg : legs) {
      gbdt::ElasticWorldConfig ecfg;
      ecfg.dist = cfg;
      ecfg.dist.elastic = true;
      ecfg.dist.channel.recv_timeout = std::chrono::milliseconds(25);
      ecfg.dist.channel.liveness_timeout = std::chrono::milliseconds(500);
      ecfg.dist.channel.heartbeat_interval = std::chrono::milliseconds(50);
      ecfg.initial_workers = leg.procs - 1;
      ecfg.tcp.reconnect_window = std::chrono::milliseconds(2000);
      ecfg.tcp.backoff.base = std::chrono::milliseconds(5);
      ecfg.tcp.backoff.cap = std::chrono::milliseconds(50);
      const auto churn = ipc::ChurnSchedule::parse(leg.churn);
      if (!churn) return 1;
      ecfg.churn = *churn;

      t0 = std::chrono::steady_clock::now();
      const auto out = gbdt::train_elastic_tcp(ecfg, data);
      const double wall_s = seconds_since(t0);
      bool identical =
          out.rank0.has_value() &&
          results_bit_identical(*out.rank0, reference, data);
      for (const auto& worker : out.completed) {
        identical = identical && results_bit_identical(worker, reference, data);
      }
      const auto& st = out.rank0_stats;
      std::printf(
          "%s    {\"procs\": %u, \"churn\": \"%s\", \"wall_s\": %.4f,\n"
          "     \"bit_identical_to_in_process\": %s, \"repartitions\": %u,"
          " \"joins\": %u, \"dead_workers\": %u, \"shards_adopted\": %u,\n"
          "     \"reconnects\": %llu, \"heartbeats_rx\": %llu,"
          " \"time_to_detect_ms\": %.1f}",
          first_leg ? "" : ",\n", leg.procs, leg.churn, wall_s,
          identical ? "true" : "false", st.repartitions, st.joins,
          st.dead_workers, st.shards_adopted,
          static_cast<unsigned long long>(st.transport.reconnects),
          static_cast<unsigned long long>(st.channel.heartbeats_received),
          st.channel.max_detect_ms);
      first_leg = false;
      if (!identical) {
        std::printf("\n  ]\n}\n");
        std::fprintf(stderr,
                     "FATAL: elastic output diverged from the in-process"
                     " trainer (procs=%u, churn=\"%s\")\n",
                     leg.procs, leg.churn);
        return 1;
      }
    }
    std::printf("\n  ],\n");
  }

  // Codec microbench: serialize/deserialize cost of one root-node shard
  // histogram -- the unit of merge traffic every transport carries.
  {
    gbdt::Histogram hist(data);
    std::vector<std::uint32_t> rows(data.num_records());
    for (std::uint64_t r = 0; r < rows.size(); ++r) {
      rows[r] = static_cast<std::uint32_t>(r);
    }
    std::vector<gbdt::GradientPair> gradients(data.num_records(),
                                              {0.25f, 0.5f});
    hist.build(data, rows, gradients);
    const std::uint64_t bytes = ipc::HistogramCodec::encoded_histogram_bytes(hist);

    constexpr int kReps = 200;
    t0 = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < kReps; ++i) {
      payload.clear();
      ipc::HistogramCodec::encode_histogram(hist, &payload);
    }
    const double encode_s = seconds_since(t0) / kReps;
    gbdt::Histogram decoded(data);
    t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      ipc::ByteReader r(payload);
      if (!ipc::HistogramCodec::decode_histogram_into(r, &decoded)) return 1;
    }
    const double decode_s = seconds_since(t0) / kReps;
    std::printf("  \"codec\": {\"histogram_bytes\": %llu,"
                " \"encode_us\": %.2f, \"decode_us\": %.2f,\n"
                "            \"encode_mb_s\": %.1f, \"decode_mb_s\": %.1f}\n",
                static_cast<unsigned long long>(bytes), encode_s * 1e6,
                decode_s * 1e6, bytes / encode_s / 1e6,
                bytes / decode_s / 1e6);
  }
  std::printf("}\n");
  return 0;
}
