// Regenerates Table VI: area and power estimates for a 50-cluster, 3200-BU
// Booster chip at 45 nm / 1 GHz, plus the banked-vs-monolithic SRAM
// comparison the paper discusses (3200 banks cost ~70% more area and ~59%
// more static power than one 6.4 MB array).
//
// Formatting shim over the "table6_area_power" scenario
// (bench/scenarios/table6_area_power.json): a pure silicon-model scenario
// (no workloads or models) whose accelerator config block feeds
// energy::AreaPowerModel here.
#include <cstdio>

#include <string>

#include "energy/area_power.h"
#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  (void)sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("table6_area_power");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto cfg_opt = spec.booster_config(core::BoosterConfig{}, &error);
  if (!cfg_opt) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const core::BoosterConfig cfg = *cfg_opt;
  const energy::AreaPowerModel model;
  const auto chip = model.estimate(cfg.num_bus());

  util::Table table({"Component", "Area (mm^2)", "Power (W)"});
  table.add_row({"Control Logic", util::fmt(chip.control.area_mm2, 1),
                 util::fmt(chip.control.power_w, 1)});
  table.add_row({"FPU", util::fmt(chip.fpu.area_mm2, 1),
                 util::fmt(chip.fpu.power_w, 1)});
  table.add_row({"SRAM", util::fmt(chip.sram.area_mm2, 1),
                 util::fmt(chip.sram.power_w, 1)});
  const auto total = chip.total();
  table.add_row({"Total", util::fmt(total.area_mm2, 1),
                 util::fmt(total.power_w, 1)});
  table.print();

  std::printf("\nSRAM share of area: %.0f%% (paper: ~55%%)\n",
              100.0 * chip.sram.area_mm2 / total.area_mm2);
  std::printf("Banked (%u x %u KB) vs monolithic %.1f MB SRAM: %.2fx area,"
              " %.2fx static power (paper: ~1.7x, ~1.59x)\n",
              cfg.num_bus(), cfg.sram_bytes / 1024,
              cfg.total_sram_bytes() / 1048576.0,
              chip.sram.area_mm2 / model.monolithic_sram_area_mm2(cfg.num_bus()),
              chip.sram.power_w / model.monolithic_sram_power_w(cfg.num_bus()));

  // Design-space view the analytic model enables beyond the paper's point
  // estimate: how area/power scale with the BU count.
  std::printf("\nScaling with BU count:\n");
  util::Table scaling({"BUs", "Area (mm^2)", "Power (W)"});
  for (const std::uint32_t bus : {800u, 1600u, 3200u, 6400u}) {
    const auto c = model.estimate(bus).total();
    scaling.add_row({std::to_string(bus), util::fmt(c.area_mm2, 1),
                     util::fmt(c.power_w, 1)});
  }
  scaling.print();
  std::printf("\nPaper reference: 60.0 mm^2, 23.2 W at 3200 BUs.\n");
  return 0;
}
