// Design-space ablation beyond the paper's point results: validates the
// rate-matching argument of Section III-B quantitatively. The paper sizes
// the BU array so on-chip work saturates the memory system (6.25 blocks/
// cycle x 64 fields x 8 cycles = 3200 BUs at 400 GB/s). This bench sweeps
// both sides -- BU count at fixed bandwidth, and bandwidth at fixed BU
// count -- and reports where each configuration's training time lands, plus
// silicon cost from the Table VI model.
//
// Formatting shim over the "dse_bu_sweep" and "dse_bandwidth_sweep"
// scenarios (bench/scenarios/dse_*.json) -- both run their sweep cells in
// parallel on the scenario runner's thread pool; pass --json for the
// canonical cell dumps.
#include <cmath>
#include <cstdio>

#include "energy/area_power.h"
#include "sim/library.h"
#include "sim/runner.h"
#include "util/stats.h"
#include "util/table.h"

using namespace booster;

namespace {

/// Geomean over workloads of ideal-32core time / booster time at one sweep
/// point (model order in both DSE specs: ideal-32core, booster).
double geomean_speedup(const sim::ScenarioResult& res, std::size_t sweep) {
  std::vector<double> speedups;
  for (std::size_t w = 0; w < res.workloads.size(); ++w) {
    speedups.push_back(res.cell(sweep, w, 0).total_seconds /
                       res.cell(sweep, w, 1).total_seconds);
  }
  return util::geomean(speedups);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = sim::parse_run_options(argc, argv);
  sim::print_header(
      "DSE: rate-matching the BU array to the memory system",
      "Booster paper, Section III-B (sizing argument); extension study");

  std::string error;
  const auto bu = sim::ScenarioRunner().run(*sim::builtin_scenario("dse_bu_sweep"),
                                            opt, &error);
  if (!bu) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  const energy::AreaPowerModel silicon;
  std::printf("BU-count sweep at %.0f GB/s streaming:\n",
              bu->cells[0].booster.bandwidth.streaming / 1e9);
  util::Table bus_sweep({"clusters", "BUs", "geomean speedup", "area mm^2",
                         "power W"});
  double prev = 0.0;
  double knee_clusters = 0.0;
  for (std::size_t s = 0; s < bu->sweep_values.size(); ++s) {
    const auto& cfg = bu->cell(s, 0, 0).booster;
    const double speedup = geomean_speedup(*bu, s);
    const auto chip = silicon.estimate(cfg.num_bus()).total();
    bus_sweep.add_row({std::to_string(cfg.clusters),
                       std::to_string(cfg.num_bus()), util::fmt_x(speedup),
                       util::fmt(chip.area_mm2, 1),
                       util::fmt(chip.power_w, 1)});
    // Knee: first configuration whose marginal gain drops under 5%.
    if (prev > 0.0 && knee_clusters == 0.0 && speedup / prev < 1.05) {
      knee_clusters = cfg.clusters;
    }
    prev = speedup;
  }
  bus_sweep.print();
  std::printf("Marginal gain falls below 5%% at ~%0.f clusters (paper design:"
              " 50 clusters / 3200 BUs).\n\n", knee_clusters);

  const auto bw = sim::ScenarioRunner().run(
      *sim::builtin_scenario("dse_bandwidth_sweep"), opt, &error);
  if (!bw) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  std::printf("Bandwidth sweep at 3200 BUs (scaling all patterns together):\n");
  util::Table bw_sweep({"streaming GB/s", "geomean speedup"});
  for (std::size_t s = 0; s < bw->sweep_values.size(); ++s) {
    bw_sweep.add_row(
        {util::fmt(bw->cell(s, 0, 0).booster.bandwidth.streaming / 1e9, 0),
         util::fmt_x(geomean_speedup(*bw, s))});
  }
  bw_sweep.print();
  std::printf("\nReading: gains saturate in both directions around the"
              " paper's 3200-BU / 400 GB/s design point.\n");
  if (opt.json) {
    // One parseable document covering both sweeps.
    sim::Json out = sim::Json::object();
    out.set("bu_sweep", bu->to_json());
    out.set("bandwidth_sweep", bw->to_json());
    std::fputs(out.dump().c_str(), stdout);
  }
  return 0;
}
