// Design-space ablation beyond the paper's point results: validates the
// rate-matching argument of Section III-B quantitatively. The paper sizes
// the BU array so on-chip work saturates the memory system (6.25 blocks/
// cycle x 64 fields x 8 cycles = 3200 BUs at 400 GB/s). This bench sweeps
// both sides -- BU count at fixed bandwidth, and bandwidth at fixed BU
// count -- and reports where each configuration's training time lands, plus
// silicon cost from the Table VI model.
#include <cmath>
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "energy/area_power.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header(
      "DSE: rate-matching the BU array to the memory system",
      "Booster paper, Section III-B (sizing argument); extension study");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  const energy::AreaPowerModel silicon;
  const auto bw = bench::calibrated_bandwidth();

  // Geomean speedup over the five benchmarks for each configuration.
  auto geomean_speedup = [&](const core::BoosterConfig& cfg) {
    double log_sum = 0.0;
    const core::BoosterModel model(cfg);
    for (const auto& w : workloads) {
      const double s = cpu.train_cost(w.trace, w.info).total() /
                       model.train_cost(w.trace, w.info).total();
      log_sum += std::log(s);
    }
    return std::exp(log_sum / static_cast<double>(workloads.size()));
  };

  std::printf("BU-count sweep at %.0f GB/s streaming:\n", bw.streaming / 1e9);
  util::Table bus_sweep({"clusters", "BUs", "geomean speedup", "area mm^2",
                         "power W"});
  double prev = 0.0;
  double knee_clusters = 0.0;
  for (const std::uint32_t clusters : {5u, 10u, 20u, 30u, 40u, 50u, 65u, 80u}) {
    core::BoosterConfig cfg = bench::default_booster_config();
    cfg.clusters = clusters;
    const double speedup = geomean_speedup(cfg);
    const auto chip = silicon.estimate(cfg.num_bus()).total();
    bus_sweep.add_row({std::to_string(clusters), std::to_string(cfg.num_bus()),
                       util::fmt_x(speedup), util::fmt(chip.area_mm2, 1),
                       util::fmt(chip.power_w, 1)});
    // Knee: first configuration whose marginal gain drops under 5%.
    if (prev > 0.0 && knee_clusters == 0.0 && speedup / prev < 1.05) {
      knee_clusters = clusters;
    }
    prev = speedup;
  }
  bus_sweep.print();
  std::printf("Marginal gain falls below 5%% at ~%0.f clusters (paper design:"
              " 50 clusters / 3200 BUs).\n\n", knee_clusters);

  std::printf("Bandwidth sweep at 3200 BUs (scaling all patterns together):\n");
  util::Table bw_sweep({"streaming GB/s", "geomean speedup"});
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    core::BoosterConfig cfg = bench::default_booster_config();
    cfg.bandwidth.streaming *= scale;
    cfg.bandwidth.strided_gather *= scale;
    cfg.bandwidth.random *= scale;
    cfg.bandwidth.peak *= scale;
    bw_sweep.add_row({util::fmt(cfg.bandwidth.streaming / 1e9, 0),
                      util::fmt_x(geomean_speedup(cfg))});
  }
  bw_sweep.print();
  std::printf("\nReading: gains saturate in both directions around the"
              " paper's 3200-BU / 400 GB/s design point.\n");
  return 0;
}
