// Regenerates Fig 6: breakdown of normalized sequential training time by
// algorithm step. Expected shape (paper Section IV): steps 1+3+5 account
// for over 98% of run time except Mq2008 (small dataset); step 1's share is
// reduced for Allstate/Flight (lopsided one-hot splits shrink child
// binning) and elevated for IoT (shallow trees).
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 6: sequential execution time breakdown",
                      "Booster paper, Section IV, Figure 6");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel seq(baselines::sequential_cpu_params());

  util::Table table({"Benchmark", "step1-hist", "step2-split",
                     "step3-partition", "step5-traversal", "steps 1+3+5",
                     "total"});
  for (const auto& w : workloads) {
    const auto t = seq.train_cost(w.trace, w.info);
    const double accel = 1.0 - t.fraction(trace::StepKind::kSplitSelect);
    table.add_row({w.spec.name,
                   util::fmt_pct(t.fraction(trace::StepKind::kHistogram)),
                   util::fmt_pct(t.fraction(trace::StepKind::kSplitSelect)),
                   util::fmt_pct(t.fraction(trace::StepKind::kPartition)),
                   util::fmt_pct(t.fraction(trace::StepKind::kTraversal)),
                   util::fmt_pct(accel), util::fmt_time(t.total())});
  }
  table.print();
  std::printf("\nPaper reference: steps 1/3/5 >= ~90-98%% everywhere;"
              " lowest for Mq2008; step 1 share reduced for Allstate/Flight"
              " and elevated for IoT.\n");
  return 0;
}
