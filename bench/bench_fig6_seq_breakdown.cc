// Regenerates Fig 6: breakdown of normalized sequential training time by
// algorithm step. Expected shape (paper Section IV): steps 1+3+5 account
// for over 98% of run time except Mq2008 (small dataset); step 1's share is
// reduced for Allstate/Flight (lopsided one-hot splits shrink child
// binning) and elevated for IoT (shallow trees).
//
// Formatting shim over the "fig6_seq_breakdown" scenario
// (bench/scenarios/fig6_seq_breakdown.json); pass --json for the canonical
// cell dump.
#include <cstdio>

#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig6_seq_breakdown");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  util::Table table({"Benchmark", "step1-hist", "step2-split",
                     "step3-partition", "step5-traversal", "steps 1+3+5",
                     "total"});
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const auto& t = res->cell(0, w, 0).breakdown;  // seq-cpu
    const double accel = 1.0 - t.fraction(trace::StepKind::kSplitSelect);
    table.add_row({res->workloads[w].spec.name,
                   util::fmt_pct(t.fraction(trace::StepKind::kHistogram)),
                   util::fmt_pct(t.fraction(trace::StepKind::kSplitSelect)),
                   util::fmt_pct(t.fraction(trace::StepKind::kPartition)),
                   util::fmt_pct(t.fraction(trace::StepKind::kTraversal)),
                   util::fmt_pct(accel), util::fmt_time(t.total())});
  }
  table.print();
  std::printf("\nPaper reference: steps 1/3/5 >= ~90-98%% everywhere;"
              " lowest for Mq2008; step 1 share reduced for Allstate/Flight"
              " and elevated for IoT.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
