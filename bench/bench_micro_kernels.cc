// Micro-benchmarks (google-benchmark) for the hot kernels of the functional
// library and simulators: histogram build (software and BU-array), split
// scan, predicate partition, tree traversal, and the cycle-level DRAM model.
// These measure *simulator* throughput, useful when tuning the functional
// pipeline; the paper's figures come from the bench_fig* binaries.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/engines.h"
#include "gbdt/binning.h"
#include "gbdt/histogram.h"
#include "gbdt/split.h"
#include "gbdt/trainer.h"
#include "memsim/memory_system.h"
#include "workloads/runner.h"
#include "workloads/synth.h"

namespace {

using namespace booster;

const workloads::WorkloadResult& higgs_sample() {
  static const workloads::WorkloadResult result = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 16000;
    cfg.sim_trees = 4;
    return workloads::run_workload(workloads::spec_by_name("Higgs"), cfg);
  }();
  return result;
}

std::vector<gbdt::GradientPair> unit_gradients(std::uint64_t n) {
  return std::vector<gbdt::GradientPair>(n, gbdt::GradientPair{0.5f, 1.0f});
}

void BM_HistogramBuild(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram hist(w.binned);
  for (auto _ : state) {
    hist.clear();
    hist.build(w.binned, rows, grads);
    benchmark::DoNotOptimize(hist.totals());
  }
  state.SetItemsProcessed(state.iterations() * rows.size() *
                          w.binned.num_fields());
}
BENCHMARK(BM_HistogramBuild);

void BM_HistogramEngineBU(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  core::BoosterConfig cfg;
  core::HistogramEngine engine(cfg, core::BinnedFieldShape::of(w.binned),
                               core::MappingStrategy::kGroupByField);
  for (auto _ : state) {
    engine.clear();
    benchmark::DoNotOptimize(engine.run(w.binned, rows, grads));
  }
  state.SetItemsProcessed(state.iterations() * rows.size() *
                          w.binned.num_fields());
}
BENCHMARK(BM_HistogramEngineBU);

void BM_SplitScan(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram hist(w.binned);
  hist.build(w.binned, rows, grads);
  const gbdt::SplitFinder finder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find_best(hist, w.binned));
  }
  state.SetItemsProcessed(state.iterations() * w.binned.total_bins());
}
BENCHMARK(BM_SplitScan);

void BM_Partition(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto& tree = w.train.model.trees().front();
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  const core::PredicateEngine engine{core::BoosterConfig{}};
  for (auto _ : state) {
    auto result = engine.run(w.binned, tree, tree.root(), rows);
    benchmark::DoNotOptimize(result.pred_true.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_Partition);

void BM_TreeTraversal(benchmark::State& state) {
  const auto& w = higgs_sample();
  const core::TraversalEngine engine{core::BoosterConfig{}};
  const auto& tree = w.train.model.trees().front();
  for (auto _ : state) {
    auto result = engine.run(w.binned, tree);
    benchmark::DoNotOptimize(result.avg_path_length);
  }
  state.SetItemsProcessed(state.iterations() * w.binned.num_records());
}
BENCHMARK(BM_TreeTraversal);

void BM_DramStreaming(benchmark::State& state) {
  for (auto _ : state) {
    memsim::MemorySystem mem;
    std::uint64_t addr = 0;
    constexpr std::uint64_t kRequests = 20000;
    std::uint64_t issued = 0;
    while (mem.completed_requests() < kRequests) {
      for (int b = 0; b < 8 && issued < kRequests; ++b) {
        if (!mem.enqueue(addr, false)) break;
        ++addr;
        ++issued;
      }
      mem.tick();
    }
    benchmark::DoNotOptimize(mem.achieved_bandwidth());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_DramStreaming);

}  // namespace

BENCHMARK_MAIN();
