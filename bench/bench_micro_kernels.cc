// Micro-benchmarks (google-benchmark) for the hot kernels of the functional
// library and simulators: histogram build (software and BU-array), split
// scan, predicate partition, tree traversal, and the cycle-level DRAM model.
// These measure *simulator* throughput, useful when tuning the functional
// pipeline; the paper's figures come from the bench_fig* binaries.
#include <benchmark/benchmark.h>

#include <numeric>
#include <span>
#include <vector>

#include "core/engines.h"
#include "gbdt/binning.h"
#include "gbdt/flat_ensemble.h"
#include "gbdt/histogram.h"
#include "gbdt/split.h"
#include "gbdt/trainer.h"
#include "memsim/memory_system.h"
#include "util/simd.h"
#include "workloads/runner.h"
#include "workloads/synth.h"

namespace {

using namespace booster;

const workloads::WorkloadResult& higgs_sample() {
  static const workloads::WorkloadResult result = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 16000;
    cfg.sim_trees = 4;
    return workloads::run_workload(workloads::spec_by_name("Higgs"), cfg);
  }();
  return result;
}

std::vector<gbdt::GradientPair> unit_gradients(std::uint64_t n) {
  return std::vector<gbdt::GradientPair>(n, gbdt::GradientPair{0.5f, 1.0f});
}

void BM_HistogramBuild(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram hist(w.binned);
  for (auto _ : state) {
    hist.clear();
    hist.build(w.binned, rows, grads);
    benchmark::DoNotOptimize(hist.totals());
  }
  state.SetItemsProcessed(state.iterations() * rows.size() *
                          w.binned.num_fields());
}
BENCHMARK(BM_HistogramBuild);

void BM_HistogramEngineBU(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  core::BoosterConfig cfg;
  core::HistogramEngine engine(cfg, core::BinnedFieldShape::of(w.binned),
                               core::MappingStrategy::kGroupByField);
  for (auto _ : state) {
    engine.clear();
    benchmark::DoNotOptimize(engine.run(w.binned, rows, grads));
  }
  state.SetItemsProcessed(state.iterations() * rows.size() *
                          w.binned.num_fields());
}
BENCHMARK(BM_HistogramEngineBU);

void BM_SplitScan(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram hist(w.binned);
  hist.build(w.binned, rows, grads);
  const gbdt::SplitFinder finder;
  for (auto _ : state) {
    benchmark::DoNotOptimize(finder.find_best(hist, w.binned));
  }
  state.SetItemsProcessed(state.iterations() * w.binned.total_bins());
}
BENCHMARK(BM_SplitScan);

void BM_Partition(benchmark::State& state) {
  const auto& w = higgs_sample();
  const auto& tree = w.train.model.trees().front();
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  const core::PredicateEngine engine{core::BoosterConfig{}};
  for (auto _ : state) {
    auto result = engine.run(w.binned, tree, tree.root(), rows);
    benchmark::DoNotOptimize(result.pred_true.size());
  }
  state.SetItemsProcessed(state.iterations() * rows.size());
}
BENCHMARK(BM_Partition);

void BM_TreeTraversal(benchmark::State& state) {
  const auto& w = higgs_sample();
  const core::TraversalEngine engine{core::BoosterConfig{}};
  const auto& tree = w.train.model.trees().front();
  for (auto _ : state) {
    auto result = engine.run(w.binned, tree);
    benchmark::DoNotOptimize(result.avg_path_length);
  }
  state.SetItemsProcessed(state.iterations() * w.binned.num_records());
}
BENCHMARK(BM_TreeTraversal);

// ---------------------------------------------------------- SIMD legs
// Each benchmark below takes a dispatch level as its argument (0=scalar,
// 1=avx2, 2=avx512) and repins the process-wide kernel table for its
// duration, so one run reports scalar-vs-wide side by side. Levels this
// host (or toolchain) lacks are skipped, not failed. Outputs are
// bit-identical across legs -- only the wall clock differs.

/// Resolves the level a SIMD leg requests into *out; returns false (after
/// flagging the skip) when this binary/host cannot execute it.
bool simd_leg_level(benchmark::State& state, util::simd::Level* out) {
  const auto lv = static_cast<util::simd::Level>(state.range(0));
  if (util::simd::kernels(lv).level != lv) {
    state.SkipWithError("dispatch level not supported on this host");
    return false;
  }
  *out = lv;
  return true;
}

void BM_SimdHistogramAdd(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram dst(w.binned);
  gbdt::Histogram src(w.binned);
  src.build(w.binned, rows, grads);
  for (auto _ : state) {
    dst.add(src);
    benchmark::DoNotOptimize(dst);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          dst.total_bins() * sizeof(gbdt::BinStats) * 2);
}
BENCHMARK(BM_SimdHistogramAdd)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdHistogramSubtract(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram parent(w.binned);
  parent.build(w.binned, rows, grads);
  gbdt::Histogram sibling(w.binned);
  sibling.build(w.binned,
                std::span<const std::uint32_t>(rows).subspan(0, rows.size() / 2),
                grads);
  gbdt::Histogram scratch(w.binned);
  for (auto _ : state) {
    // The smaller-child trick's kernel: scratch = parent - sibling.
    scratch.subtract_from(parent, sibling);
    benchmark::DoNotOptimize(scratch);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          scratch.total_bins() * sizeof(gbdt::BinStats) * 3);
}
BENCHMARK(BM_SimdHistogramSubtract)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdHistogramClear(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  const auto& w = higgs_sample();
  gbdt::Histogram hist(w.binned);
  for (auto _ : state) {
    hist.clear();
    benchmark::DoNotOptimize(hist);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          hist.total_bins() * sizeof(gbdt::BinStats));
}
BENCHMARK(BM_SimdHistogramClear)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdQuantizeGather(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  constexpr std::size_t kRows = 16384;
  std::vector<gbdt::GradientPair> grads(kRows);
  for (std::size_t i = 0; i < kRows; ++i) {
    grads[i] = {static_cast<float>(i) * 1e-3f - 8.0f,
                static_cast<float>(i % 97) * 1e-2f};
  }
  std::vector<std::uint32_t> rows(kRows);
  std::iota(rows.begin(), rows.end(), 0);
  std::vector<double> qg(kRows), qh(kRows);
  const auto& ker = util::simd::kernels();
  for (auto _ : state) {
    ker.quantize_gather(reinterpret_cast<const float*>(grads.data()),
                        rows.data(), kRows, gbdt::kStatInvQuantum,
                        gbdt::kStatQuantum, qg.data(), qh.data());
    benchmark::DoNotOptimize(qg.data());
    benchmark::DoNotOptimize(qh.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kRows);
}
BENCHMARK(BM_SimdQuantizeGather)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_SimdHistogramBuild(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  const auto& w = higgs_sample();
  const auto grads = unit_gradients(w.binned.num_records());
  std::vector<std::uint32_t> rows(w.binned.num_records());
  std::iota(rows.begin(), rows.end(), 0);
  gbdt::Histogram hist(w.binned);
  for (auto _ : state) {
    hist.clear();
    hist.build(w.binned, rows, grads);
    benchmark::DoNotOptimize(hist.totals());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          rows.size() * w.binned.num_fields());
}
BENCHMARK(BM_SimdHistogramBuild)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

/// Serving-shaped sample for the prediction legs: a full-depth 48-tree
/// ensemble (higgs_sample's 4 trees fit in L1, where blocking is pure
/// overhead; the blocked path earns its keep once the ensemble's node
/// tables and the records' bin columns start missing in cache).
const workloads::WorkloadResult& predict_sample() {
  static const workloads::WorkloadResult result = [] {
    workloads::RunnerConfig cfg;
    cfg.sim_records = 16000;
    cfg.sim_trees = 48;
    return workloads::run_workload(workloads::spec_by_name("Higgs"), cfg);
  }();
  return result;
}

void BM_SimdPredictMany(benchmark::State& state) {
  util::simd::Level lv;
  if (!simd_leg_level(state, &lv)) return;
  const util::simd::ScopedLevelForTesting scoped(lv);
  const auto& w = predict_sample();
  const gbdt::FlatEnsemble flat(w.train.model);
  const std::uint64_t n = w.binned.num_records();
  std::vector<double> out(n);
  for (auto _ : state) {
    flat.predict_many(w.binned, 0, n, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_SimdPredictMany)->ArgName("level")->Arg(0)->Arg(1)->Arg(2);

void BM_PredictPerRecord(benchmark::State& state) {
  // Per-record Model::predict baseline for the BM_SimdPredictMany legs
  // (same records, same trees, one record at a time, no tiling).
  const auto& w = predict_sample();
  const std::uint64_t n = w.binned.num_records();
  std::vector<double> out(n);
  for (auto _ : state) {
    for (std::uint64_t r = 0; r < n; ++r) {
      out[r] = w.train.model.predict(w.binned, r);
    }
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_PredictPerRecord);

void BM_DramStreaming(benchmark::State& state) {
  for (auto _ : state) {
    memsim::MemorySystem mem;
    std::uint64_t addr = 0;
    constexpr std::uint64_t kRequests = 20000;
    std::uint64_t issued = 0;
    while (mem.completed_requests() < kRequests) {
      for (int b = 0; b < 8 && issued < kRequests; ++b) {
        if (!mem.enqueue(addr, false)) break;
        ++addr;
        ++issued;
      }
      mem.tick();
    }
    benchmark::DoNotOptimize(mem.achieved_bandwidth());
  }
  state.SetItemsProcessed(state.iterations() * 20000);
}
BENCHMARK(BM_DramStreaming);

}  // namespace

BENCHMARK_MAIN();
