// Regenerates Fig 9: isolating Booster's optimizations. Three Booster
// configurations over the Ideal 32-core baseline:
//   (1) Booster-no-opts: BU parallelism only (naive bin packing, row-major
//       fetches everywhere),
//   (2) + group-by-field bin mapping (helps the categorical benchmarks
//       Allstate and Flight; numeric-only datasets already map one field
//       per SRAM under naive packing),
//   (3) + redundant per-field column-major format (helps steps 3/5; its
//       impact is magnified where step 1 is already fast -- Amdahl).
//
// Formatting shim over the "fig9_ablation" scenario
// (bench/scenarios/fig9_ablation.json), whose models are three "booster"
// entries with per-model config overrides; pass --json for the canonical
// cell dump. The bin-mapping introspection columns (serialization factor,
// capacity utilization) are presentation-only and derived here from the
// cells' resolved configs.
#include <cstdio>

#include "core/booster_model.h"
#include "sim/library.h"
#include "sim/runner.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = sim::parse_run_options(argc, argv);
  const auto spec = *sim::builtin_scenario("fig9_ablation");
  sim::print_header(spec.title, spec.paper_ref);

  std::string error;
  const auto res = sim::ScenarioRunner().run(spec, opt, &error);
  if (!res) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }

  // Model order: ideal-32core, booster -no-opts, +group-by-field,
  // +column-format. Mapping introspection wants the no-opts and full
  // configs, reconstructed from the spec's own overrides.
  core::BoosterConfig no_opts_cfg = res->cells[0].booster;
  core::BoosterConfig full_cfg = res->cells[0].booster;
  if (!sim::apply_booster_delta(spec.models[1].overrides, &no_opts_cfg,
                                &error) ||
      !sim::apply_booster_delta(spec.models[3].overrides, &full_cfg,
                                &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    return 1;
  }
  const core::BoosterModel m_none(no_opts_cfg);
  const core::BoosterModel m_full(full_cfg);

  util::Table table({"Benchmark", "no-opts", "+group-by-field",
                     "+column-format (full)", "serialization naive",
                     "capacity util (group-by-field)"});
  for (std::size_t w = 0; w < res->workloads.size(); ++w) {
    const auto& info = res->workloads[w].info;
    const double base = res->cell(0, w, 0).total_seconds;
    const auto naive_mapping = m_none.mapping_for(info);
    const auto full_mapping = m_full.mapping_for(info);
    table.add_row(
        {res->workloads[w].spec.name,
         util::fmt_x(base / res->cell(0, w, 1).total_seconds),
         util::fmt_x(base / res->cell(0, w, 2).total_seconds),
         util::fmt_x(base / res->cell(0, w, 3).total_seconds),
         std::to_string(naive_mapping.serialization_factor()) + "x",
         util::fmt_pct(
             full_mapping.capacity_utilization(info.bins_per_field))});
  }
  table.print();
  std::printf("\nPaper reference: group-by-field helps only the categorical"
              " benchmarks; column format helps most where speedups are"
              " already high; ~89%% SRAM capacity utilization.\n");
  if (opt.json) std::fputs(res->to_json().dump().c_str(), stdout);
  return 0;
}
