// Regenerates Fig 9: isolating Booster's optimizations. Three Booster
// configurations over the Ideal 32-core baseline:
//   (1) Booster-no-opts: BU parallelism only (naive bin packing, row-major
//       fetches everywhere),
//   (2) + group-by-field bin mapping (helps the categorical benchmarks
//       Allstate and Flight; numeric-only datasets already map one field
//       per SRAM under naive packing),
//   (3) + redundant per-field column-major format (helps steps 3/5; its
//       impact is magnified where step 1 is already fast -- Amdahl).
#include <cstdio>

#include "baselines/cpu_like.h"
#include "common.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace booster;
  const auto opt = bench::BenchOptions::parse(argc, argv);
  bench::print_header("Fig 9: isolating Booster's optimizations",
                      "Booster paper, Section V-C, Figure 9");

  const auto workloads = bench::load_workloads(opt);
  const baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());

  core::BoosterConfig no_opts = bench::default_booster_config();
  no_opts.group_by_field_mapping = false;
  no_opts.redundant_column_format = false;
  core::BoosterConfig with_mapping = no_opts;
  with_mapping.group_by_field_mapping = true;
  core::BoosterConfig full = with_mapping;
  full.redundant_column_format = true;

  const core::BoosterModel m_none(no_opts, {}, "-no-opts");
  const core::BoosterModel m_map(with_mapping, {}, "+group-by-field");
  const core::BoosterModel m_full(full, {}, "+column-format");

  util::Table table({"Benchmark", "no-opts", "+group-by-field",
                     "+column-format (full)", "serialization naive",
                     "capacity util (group-by-field)"});
  for (const auto& w : workloads) {
    const double base = ideal_cpu.train_cost(w.trace, w.info).total();
    const auto naive_mapping = m_none.mapping_for(w.info);
    const auto full_mapping = m_full.mapping_for(w.info);
    table.add_row(
        {w.spec.name,
         util::fmt_x(base / m_none.train_cost(w.trace, w.info).total()),
         util::fmt_x(base / m_map.train_cost(w.trace, w.info).total()),
         util::fmt_x(base / m_full.train_cost(w.trace, w.info).total()),
         std::to_string(naive_mapping.serialization_factor()) + "x",
         util::fmt_pct(
             full_mapping.capacity_utilization(w.info.bins_per_field))});
  }
  table.print();
  std::printf("\nPaper reference: group-by-field helps only the categorical"
              " benchmarks; column format helps most where speedups are"
              " already high; ~89%% SRAM capacity utilization.\n");
  return 0;
}
