// Serving demo: the full train -> save -> serve -> query pipeline on one
// machine. Trains a small ensemble, writes it as a checked model container
// (CRC-32 header), starts the epoll prediction server, loads the model
// over HTTP via POST /reload, sends a few prediction requests, and checks
// every answer bitwise against local Model::predict -- the same
// end-to-end bit-identity contract the test suite and bench_serve gate on.
//
// Build and run:
//   cmake -B build && cmake --build build
//   ./build/serve_demo
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "gbdt/binning.h"
#include "gbdt/model_io.h"
#include "gbdt/trainer.h"
#include "serve/client.h"
#include "serve/model_slot.h"
#include "serve/server.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

int main() {
  using namespace booster;

  // 1. Train: the IoT benchmark shape, sized for a demo.
  workloads::DatasetSpec spec = workloads::spec_by_name("IoT");
  const std::uint64_t records = 6000;
  const gbdt::Dataset raw = workloads::synthesize(spec, records, /*seed=*/7);
  const gbdt::BinnedDataset binned = gbdt::Binner().bin(raw);

  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 24;
  tcfg.max_depth = 5;
  tcfg.loss = spec.loss;
  gbdt::TrainResult trained = gbdt::Trainer(tcfg).train(binned);
  std::printf("Trained %u trees on %llu %s records\n", tcfg.num_trees,
              static_cast<unsigned long long>(records), spec.name.c_str());

  // 2. Save: the checked container (length + CRC-32 header), the artifact
  //    format meant to cross machine boundaries.
  const std::string model_path = "/tmp/booster_serve_demo.model";
  if (!gbdt::save_model_checked_file(trained.model, model_path)) {
    std::fprintf(stderr, "cannot write %s\n", model_path.c_str());
    return 1;
  }
  std::printf("Saved checked container to %s\n", model_path.c_str());

  // 3. Serve: an empty slot -- the model arrives over HTTP, like a
  //    deployment would push it.
  serve::ModelSlot slot;
  serve::ServerConfig scfg;
  scfg.batch_window = std::chrono::microseconds(200);
  serve::Server server(scfg, &slot, binned);
  std::thread loop([&server] { server.run(); });
  std::printf("Serving on 127.0.0.1:%u\n", server.port());

  serve::BlockingClient client;
  serve::Response resp;
  bool ok = client.connect(server.port());

  // Before any model is installed the server refuses loudly.
  ok = ok && client.request("POST", "/predict",
                            serve::csv_rows(raw, 0, 1), &resp);
  std::printf("POST /predict before install -> %d (expected 503)\n",
              resp.status);

  ok = ok && client.request("POST", "/reload", model_path, &resp);
  std::printf("POST /reload -> %d %s", resp.status, resp.body.c_str());
  if (!ok || resp.status != 200) {
    std::fprintf(stderr, "reload failed\n");
    return 1;
  }

  // 4. Query: three batches of rows; verify every prediction bitwise.
  std::uint64_t checked = 0, wrong = 0;
  for (std::uint64_t first : {std::uint64_t{0}, std::uint64_t{100},
                              std::uint64_t{4999}}) {
    const std::uint64_t rows = 5;
    if (!client.request("POST", "/predict", serve::csv_rows(raw, first, rows),
                        &resp) ||
        resp.status != 200) {
      std::fprintf(stderr, "predict failed (status %d)\n", resp.status);
      return 1;
    }
    std::vector<double> got;
    if (!serve::parse_predictions(resp.body, &got) || got.size() != rows) {
      std::fprintf(stderr, "unparsable prediction body\n");
      return 1;
    }
    for (std::uint64_t i = 0; i < rows; ++i) {
      const std::uint64_t row = (first + i) % records;
      const double local = trained.model.predict(binned, row);
      ++checked;
      if (got[i] != local) ++wrong;
    }
  }
  std::printf("Checked %llu served predictions against local"
              " Model::predict: %llu mismatches\n",
              static_cast<unsigned long long>(checked),
              static_cast<unsigned long long>(wrong));

  server.stop();
  loop.join();
  std::remove(model_path.c_str());
  if (wrong != 0) return 1;
  std::printf("Every served prediction is bit-identical. Done.\n");
  return 0;
}
