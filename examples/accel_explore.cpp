// Accelerator design-space exploration: uses the public modeling API to ask
// the questions a hardware architect would -- how many BUs does a given
// memory system justify (the paper's rate-matching argument, SS III-B), what
// does each configuration cost in silicon (Table VI model), and where does
// the next bottleneck appear.
#include <cstdio>

#include "baselines/cpu_like.h"
#include "core/booster_model.h"
#include "energy/area_power.h"
#include "memsim/bandwidth_probe.h"
#include "util/table.h"
#include "workloads/runner.h"

int main() {
  using namespace booster;

  // Workload under study: Higgs (numeric-heavy, step-1 dominant).
  workloads::RunnerConfig runner;
  runner.sim_records = 16000;
  runner.sim_trees = 16;
  std::printf("Preparing the Higgs workload trace...\n");
  const auto w =
      workloads::run_workload(workloads::spec_by_name("Higgs"), runner);

  // Calibrate the DRAM model once (Table IV configuration).
  std::printf("Calibrating DRAM sustained bandwidth (cycle-level model)...\n");
  const memsim::BandwidthProbe probe;
  const auto bw = probe.calibrate(40000);
  std::printf("  streaming %.0f GB/s, gather %.0f GB/s, random %.0f GB/s\n\n",
              bw.streaming / 1e9, bw.strided_gather / 1e9, bw.random / 1e9);

  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  const double base = cpu.train_cost(w.trace, w.info).total();
  const energy::AreaPowerModel silicon;

  // Sweep the BU count at fixed memory bandwidth: speedup saturates once
  // compute is rate-matched to memory (the paper sizes 3200 BUs for
  // ~400 GB/s), while area/power keep growing linearly.
  std::printf("BU-count sweep at %.0f GB/s (50 clusters = paper design):\n",
              bw.streaming / 1e9);
  util::Table sweep({"clusters", "BUs", "speedup vs Ideal 32-core",
                     "area (mm^2)", "power (W)", "speedup/W"});
  for (const std::uint32_t clusters : {5u, 10u, 20u, 35u, 50u, 75u, 100u}) {
    core::BoosterConfig cfg;
    cfg.clusters = clusters;
    cfg.bandwidth = bw;
    const core::BoosterModel model(cfg);
    const double speedup = base / model.train_cost(w.trace, w.info).total();
    const auto chip = silicon.estimate(cfg.num_bus()).total();
    sweep.add_row({std::to_string(clusters), std::to_string(cfg.num_bus()),
                   util::fmt_x(speedup), util::fmt(chip.area_mm2, 1),
                   util::fmt(chip.power_w, 1),
                   util::fmt(speedup / chip.power_w, 2)});
  }
  sweep.print();

  // Sweep memory bandwidth at the paper's 3200 BUs: once memory outpaces
  // the BU array, compute becomes the bottleneck and more channels stop
  // helping -- the other side of rate matching.
  std::printf("\nMemory-bandwidth sweep at 3200 BUs:\n");
  util::Table mem_sweep({"streaming GB/s", "speedup vs Ideal 32-core"});
  for (const double gbps : {100.0, 200.0, 400.0, 800.0, 1600.0}) {
    core::BoosterConfig cfg;
    cfg.bandwidth = {gbps * 1e9, gbps * 0.95e9, gbps * 0.66e9, gbps * 1.01e9};
    const core::BoosterModel model(cfg);
    mem_sweep.add_row(
        {util::fmt(gbps, 0),
         util::fmt_x(base / model.train_cost(w.trace, w.info).total())});
  }
  mem_sweep.print();
  std::printf("\nReading: speedup saturates near the paper's 50-cluster /"
              " 400 GB/s design point -- the rate-matching argument of"
              " Section III-B.\n");
  return 0;
}
