// Quickstart: train a gradient-boosting model on a synthetic tabular
// dataset, evaluate it, and estimate how long the same training run would
// take on the Booster accelerator versus an ideal 32-core multicore.
//
// Build and run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "baselines/cpu_like.h"
#include "core/booster_model.h"
#include "gbdt/metrics.h"
#include "util/table.h"
#include "workloads/runner.h"

int main() {
  using namespace booster;

  // 1. Pick a workload: the Higgs benchmark shape (10M records nominal,
  //    28 numeric fields), trained functionally on a 24k-record sample.
  workloads::DatasetSpec spec = workloads::spec_by_name("Higgs");

  workloads::RunnerConfig runner;
  runner.sim_records = 24000;
  runner.sim_trees = 32;  // a prefix of the 500-tree nominal ensemble

  std::printf("Training %u trees (depth <= %u) on a %llu-record sample of "
              "%s...\n",
              runner.sim_trees, runner.max_depth,
              static_cast<unsigned long long>(runner.sim_records),
              spec.name.c_str());
  workloads::WorkloadResult result = workloads::run_workload(spec, runner);

  // 2. Inspect the trained model.
  const auto& model = result.train.model;
  std::printf("Trained %u trees; avg leaf depth %.2f; train AUC %.3f\n",
              model.num_trees(), result.train.avg_leaf_depth,
              gbdt::auc(model, result.binned));

  // 3. Cost the nominal-scale training run on two architectures.
  core::BoosterModel booster;
  baselines::CpuLikeModel ideal_cpu(baselines::ideal_cpu_params());

  const auto booster_time = booster.train_cost(result.trace, result.info);
  const auto cpu_time = ideal_cpu.train_cost(result.trace, result.info);

  util::Table table({"system", "step1-hist", "step2-split", "step3-part",
                     "step5-trav", "total"});
  auto add = [&](const std::string& name, const perf::StepBreakdown& b) {
    table.add_row({name, util::fmt_time(b[trace::StepKind::kHistogram]),
                   util::fmt_time(b[trace::StepKind::kSplitSelect]),
                   util::fmt_time(b[trace::StepKind::kPartition]),
                   util::fmt_time(b[trace::StepKind::kTraversal]),
                   util::fmt_time(b.total())});
  };
  add(ideal_cpu.name(), cpu_time);
  add(booster.name(), booster_time);
  table.print();
  std::printf("Speedup (nominal %llu records, %u trees): %.1fx\n",
              static_cast<unsigned long long>(spec.nominal_records),
              runner.nominal_trees, cpu_time.total() / booster_time.total());
  return 0;
}
