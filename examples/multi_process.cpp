// Cross-process sharded training, for real: forks worker *processes* and
// trains one ensemble over a pluggable histogram transport, then proves
// the result bit-identical to the in-process gbdt::Trainer. This is the
// end-to-end demonstration of the distributed stack -- every shard
// histogram, split decision, and finished tree crosses a real process
// boundary (spool files or an AF_UNIX socket) through the checksummed
// wire format and the retry protocol.
//
//   ./build/multi_process [--transport file|socket|loopback|tcp]
//                         [--procs N] [--shards K] [--threads T]
//                         [--records N] [--trees N] [--kill-rejoin]
//                         [--die-rank R] [--die-tree T] [--rejoin-tree T]
//
// Every process synthesizes the same deterministic dataset (data-parallel
// with replicated inputs; rank r executes only its shard range), trains
// through gbdt::DistributedTrainer, and independently verifies its copy of
// the model against a local single-process reference -- so a divergence
// *anywhere* in the world makes the example exit non-zero, which is what
// scripts/check.sh keys off. --transport loopback runs the ranks as
// threads instead (same protocol, no fork), which is the variant the
// sanitizer CI leg executes.
//
// --transport tcp runs the *elastic* world over real localhost TCP: rank 0
// listens on an ephemeral port and recomputes the shard assignment at tree
// boundaries from live membership. With --kill-rejoin, worker --die-rank
// SIGKILLs itself mid-tree at --die-tree (rank 0 adopts its shards), and a
// fresh incarnation of the same rank connects at --rejoin-tree (admitted
// with a catch-up replay) -- the survivors, the rejoiner, and rank 0 all
// still verify bit-identical to the single-process trainer. This is the
// worker-churn demonstration scripts/check.sh runs.
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>

#include "gbdt/binning.h"
#include "gbdt/distributed.h"
#include "gbdt/trainer.h"
#include "ipc/file_transport.h"
#include "ipc/socket_transport.h"
#include "ipc/tcp_transport.h"
#include "ipc/world.h"
#include "workloads/spec.h"
#include "workloads/synth.h"

namespace {

using namespace booster;

struct Args {
  ipc::TransportKind transport = ipc::TransportKind::kFile;
  std::uint32_t procs = 3;
  std::uint32_t shards = 8;
  unsigned threads = 2;
  std::uint64_t records = 20000;
  std::uint32_t trees = 8;
  // tcp-only churn demo: --die-rank SIGKILLs itself mid-tree at
  // --die-tree, a fresh incarnation of the same rank joins at
  // --rejoin-tree.
  bool kill_rejoin = false;
  std::uint32_t die_rank = 2;
  std::uint32_t die_tree = 1;
  std::uint32_t rejoin_tree = 3;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : "";
    };
    if (std::strcmp(argv[i], "--transport") == 0) {
      const auto kind = ipc::transport_kind_from_name(next());
      if (!kind) {
        std::fprintf(stderr,
                     "unknown transport (loopback|file|socket|tcp)\n");
        std::exit(2);
      }
      a.transport = *kind;
    } else if (std::strcmp(argv[i], "--kill-rejoin") == 0) {
      a.kill_rejoin = true;
    } else if (std::strcmp(argv[i], "--die-rank") == 0) {
      a.die_rank = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--die-tree") == 0) {
      a.die_tree = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--rejoin-tree") == 0) {
      a.rejoin_tree = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--procs") == 0) {
      a.procs = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--shards") == 0) {
      a.shards = static_cast<std::uint32_t>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      a.threads = static_cast<unsigned>(std::atoi(next()));
    } else if (std::strcmp(argv[i], "--records") == 0) {
      a.records = static_cast<std::uint64_t>(std::atoll(next()));
    } else if (std::strcmp(argv[i], "--trees") == 0) {
      a.trees = static_cast<std::uint32_t>(std::atoi(next()));
    } else {
      std::fprintf(stderr, "unknown flag %s\n", argv[i]);
      std::exit(2);
    }
  }
  if (a.procs < 1 || a.shards < 1 || a.trees < 1 || a.records < 10) {
    std::fprintf(stderr, "invalid arguments\n");
    std::exit(2);
  }
  if (a.kill_rejoin &&
      (a.transport != ipc::TransportKind::kTcp || a.die_rank == 0 ||
       a.die_rank >= a.procs || a.die_tree >= a.trees ||
       a.rejoin_tree <= a.die_tree || a.rejoin_tree >= a.trees)) {
    std::fprintf(stderr,
                 "--kill-rejoin needs --transport tcp and "
                 "0 < die-rank < procs, die-tree < rejoin-tree < trees\n");
    std::exit(2);
  }
  return a;
}

/// Bit-identity check against the single-process reference (weights,
/// gains, losses, sampled predictions).
bool verify(const gbdt::TrainResult& got, const gbdt::TrainResult& ref,
            const gbdt::BinnedDataset& data, std::uint32_t rank) {
  if (got.model.num_trees() != ref.model.num_trees()) return false;
  for (std::uint32_t t = 0; t < ref.model.num_trees(); ++t) {
    const gbdt::Tree& x = got.model.trees()[t];
    const gbdt::Tree& y = ref.model.trees()[t];
    if (x.num_nodes() != y.num_nodes()) return false;
    for (std::uint32_t id = 0; id < x.num_nodes(); ++id) {
      const auto& p = x.node(static_cast<std::int32_t>(id));
      const auto& q = y.node(static_cast<std::int32_t>(id));
      if (p.is_leaf != q.is_leaf || p.field != q.field || p.kind != q.kind ||
          p.threshold_bin != q.threshold_bin ||
          p.default_left != q.default_left || p.left != q.left ||
          p.right != q.right || p.depth != q.depth ||
          p.weight != q.weight || p.gain != q.gain) {
        std::fprintf(stderr, "[rank %u] divergence at tree %u node %u\n",
                     rank, t, id);
        return false;
      }
    }
  }
  for (std::size_t t = 0; t < ref.tree_stats.size(); ++t) {
    if (got.tree_stats[t].train_loss != ref.tree_stats[t].train_loss) {
      std::fprintf(stderr, "[rank %u] train_loss diverged at tree %zu\n",
                   rank, t);
      return false;
    }
  }
  for (std::uint64_t r = 0; r < data.num_records(); r += 101) {
    if (got.model.predict_raw(data, r) != ref.model.predict_raw(data, r)) {
      std::fprintf(stderr, "[rank %u] prediction diverged at record %llu\n",
                   rank, static_cast<unsigned long long>(r));
      return false;
    }
  }
  return true;
}

gbdt::BinnedDataset make_data(const Args& args) {
  // Deterministic synthesis: every process rebuilds the identical binned
  // dataset from the seed (data-parallel with replicated inputs).
  workloads::DatasetSpec spec = workloads::fraud_spec();
  const auto raw = workloads::synthesize(spec, args.records, /*seed=*/42);
  return gbdt::Binner().bin(raw);
}

gbdt::DistributedConfig make_config(const Args& args) {
  gbdt::DistributedConfig cfg;
  cfg.trainer.num_trees = args.trees;
  cfg.trainer.max_depth = 6;
  cfg.trainer.loss = "logistic";
  cfg.trainer.num_shards = args.shards;
  cfg.trainer.num_threads = args.threads;
  return cfg;
}

/// One rank's whole life: build data, assemble the transport, train,
/// verify. Returns the process exit code.
int run_rank(const Args& args, const std::string& path, std::uint32_t rank) {
  const auto data = make_data(args);
  const auto ref = gbdt::Trainer(make_config(args).trainer).train(data);

  std::unique_ptr<ipc::Transport> transport;
  if (args.procs > 1) {
    if (args.transport == ipc::TransportKind::kFile) {
      transport = std::make_unique<ipc::FileTransport>(path, args.procs, rank);
    } else if (rank == 0) {
      transport = ipc::SocketTransport::serve(path, args.procs);
    } else {
      transport = ipc::SocketTransport::connect(path, args.procs, rank);
    }
    if (transport == nullptr) {
      std::fprintf(stderr, "[rank %u] transport failed to assemble\n", rank);
      return 1;
    }
  }

  gbdt::DistributedTrainer trainer(make_config(args), transport.get());
  const auto got = trainer.train(data);
  if (!verify(got, ref, data, rank)) return 1;

  if (rank == 0) {
    const auto& st = trainer.stats();
    std::printf(
        "multi_process OK: transport=%s procs=%u shards=%u threads=%u "
        "records=%llu trees=%u\n"
        "  rank0: shards_local=%u adopted=%u dead_workers=%u "
        "msgs_rx=%llu retransmits=%llu bytes_rx=%llu\n"
        "  bit-identical to in-process Trainer on every rank\n",
        ipc::transport_kind_name(args.transport), args.procs, args.shards,
        args.threads, static_cast<unsigned long long>(args.records),
        args.trees, st.shards_local, st.shards_adopted, st.dead_workers,
        static_cast<unsigned long long>(st.channel.messages_received),
        static_cast<unsigned long long>(st.channel.retransmits),
        static_cast<unsigned long long>(st.transport.bytes_received));
  }
  return 0;
}

/// Elastic timing: production defaults are 10s windows; the demo tightens
/// them so detection and reconnects land in fractions of a second.
gbdt::DistributedConfig make_elastic_config(const Args& args) {
  gbdt::DistributedConfig cfg = make_config(args);
  cfg.elastic = true;
  cfg.channel.recv_timeout = std::chrono::milliseconds(25);
  cfg.channel.liveness_timeout = std::chrono::milliseconds(500);
  cfg.channel.heartbeat_interval = std::chrono::milliseconds(50);
  return cfg;
}

ipc::TcpOptions make_tcp_options() {
  ipc::TcpOptions opts;
  opts.connect_timeout = std::chrono::milliseconds(5000);
  opts.reconnect_window = std::chrono::milliseconds(2000);
  opts.backoff.base = std::chrono::milliseconds(5);
  opts.backoff.cap = std::chrono::milliseconds(50);
  return opts;
}

/// One TCP worker process: optionally parks on `wait_fd` until rank 0
/// signals the rejoin boundary, then connects with a fresh session nonce
/// and follows the elastic assignment stream. `dies` arms the SIGKILL
/// churn hook (mid-tree, after the root histograms shipped).
int run_tcp_worker(const Args& args, std::uint16_t port, std::uint32_t rank,
                   int wait_fd, bool dies) {
  // Data and the local reference come first: once released, the rejoiner
  // must connect within the live workers' liveness deadline, so the slow
  // work cannot sit between the release and the connect.
  const auto data = make_data(args);
  const auto ref = gbdt::Trainer(make_config(args).trainer).train(data);
  if (wait_fd >= 0) {
    char byte = 0;
    if (::read(wait_fd, &byte, 1) != 1) return 1;
    ::close(wait_fd);
  }

  gbdt::DistributedConfig cfg = make_elastic_config(args);
  if (dies) {
    cfg.churn_hook = [&args](std::uint32_t tree,
                             gbdt::ElasticChurnPoint point) {
      if (tree == args.die_tree &&
          point == gbdt::ElasticChurnPoint::kAfterFirstBuild) {
        ::raise(SIGKILL);  // a real crash, not a simulated one
      }
      return gbdt::ElasticChurnAction::kContinue;
    };
  }
  auto transport = ipc::TcpTransport::connect("127.0.0.1", port, args.procs,
                                              rank, make_tcp_options());
  if (transport == nullptr) {
    std::fprintf(stderr, "[rank %u] tcp connect failed\n", rank);
    return 1;
  }
  gbdt::DistributedTrainer trainer(cfg, transport.get());
  const auto got = trainer.train(data);
  if (trainer.stats().orphaned != 0) {
    std::fprintf(stderr, "[rank %u] orphaned mid-run\n", rank);
    return 1;
  }
  return verify(got, ref, data, rank) ? 0 : 1;
}

/// The elastic localhost-TCP world: rank 0 listens, forks the workers
/// (plus a parked rejoin incarnation when --kill-rejoin), trains, and
/// reaps. The rejoiner is forked *before* training so no fork happens
/// while rank 0's thread pool exists; it parks on a pipe until rank 0's
/// boundary hook releases it.
int run_tcp(const Args& args) {
  // Data and the local reference are built before any fork: the reference
  // trainer's thread pool is scoped to train(), so no threads exist at
  // fork time, and rank 0 can enter training the moment the world
  // assembles (workers' liveness clocks start at their first recv).
  const auto data = make_data(args);
  const auto ref = gbdt::Trainer(make_config(args).trainer).train(data);

  auto listener = ipc::TcpTransport::listen("127.0.0.1", 0, args.procs,
                                            make_tcp_options());
  if (listener == nullptr) {
    std::fprintf(stderr, "tcp listen failed\n");
    return 1;
  }
  const std::uint16_t port = listener->port();

  int rejoin_pipe[2] = {-1, -1};
  if (args.kill_rejoin && ::pipe(rejoin_pipe) != 0) {
    std::perror("pipe");
    return 1;
  }

  std::vector<pid_t> children;
  pid_t victim = -1;
  for (std::uint32_t rank = 1; rank < args.procs; ++rank) {
    const bool dies = args.kill_rejoin && rank == args.die_rank;
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      if (rejoin_pipe[0] >= 0) ::close(rejoin_pipe[0]);
      if (rejoin_pipe[1] >= 0) ::close(rejoin_pipe[1]);
      std::exit(run_tcp_worker(args, port, rank, /*wait_fd=*/-1, dies));
    }
    if (dies) victim = pid;
    children.push_back(pid);
  }
  if (args.kill_rejoin) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      ::close(rejoin_pipe[1]);
      std::exit(run_tcp_worker(args, port, args.die_rank, rejoin_pipe[0],
                               /*dies=*/false));
    }
    ::close(rejoin_pipe[0]);
    children.push_back(pid);
  }

  if (!listener->wait_for_world(args.procs,
                                std::chrono::milliseconds(15000))) {
    std::fprintf(stderr, "initial world failed to assemble\n");
    return 1;
  }

  gbdt::DistributedConfig cfg = make_elastic_config(args);
  bool released = false;
  cfg.on_tree_boundary = [&](std::uint32_t tree) {
    if (!args.kill_rejoin || tree != args.rejoin_tree || released) return;
    released = true;
    const char byte = 'x';
    if (::write(rejoin_pipe[1], &byte, 1) != 1) return;
    // Pump the listener until the fresh incarnation's handshake lands, so
    // admission happens deterministically at this boundary.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!listener->peer_connected(args.die_rank) &&
           std::chrono::steady_clock::now() < deadline) {
      listener->pump(std::chrono::milliseconds(5));
    }
  };

  gbdt::DistributedTrainer trainer(cfg, listener.get());
  const auto got = trainer.train(data);
  int status = verify(got, ref, data, /*rank=*/0) ? 0 : 1;

  for (const pid_t pid : children) {
    int child_status = 0;
    if (::waitpid(pid, &child_status, 0) < 0) {
      std::perror("waitpid");
      status = 1;
      continue;
    }
    if (pid == victim) {
      if (!WIFSIGNALED(child_status) || WTERMSIG(child_status) != SIGKILL) {
        std::fprintf(stderr, "victim %d did not die by SIGKILL\n", pid);
        status = 1;
      }
    } else if (!WIFEXITED(child_status) || WEXITSTATUS(child_status) != 0) {
      std::fprintf(stderr, "worker process %d failed\n", pid);
      status = 1;
    }
  }

  const auto& st = trainer.stats();
  if (args.kill_rejoin &&
      (st.dead_workers < 1 || st.joins < 1 || st.shards_adopted < 1)) {
    std::fprintf(stderr,
                 "churn not observed: dead=%u joins=%u adopted=%u\n",
                 st.dead_workers, st.joins, st.shards_adopted);
    status = 1;
  }
  if (status == 0) {
    std::printf(
        "multi_process OK: transport=tcp procs=%u shards=%u threads=%u "
        "records=%llu trees=%u%s\n"
        "  rank0: adopted=%u dead_workers=%u joins=%u repartitions=%u "
        "heartbeats_rx=%llu msgs_rx=%llu\n"
        "  bit-identical to in-process Trainer on every surviving rank\n",
        args.procs, args.shards, args.threads,
        static_cast<unsigned long long>(args.records), args.trees,
        args.kill_rejoin ? " kill-rejoin" : "", st.shards_adopted,
        st.dead_workers, st.joins, st.repartitions,
        static_cast<unsigned long long>(st.channel.heartbeats_received),
        static_cast<unsigned long long>(st.channel.messages_received));
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse(argc, argv);

  if (args.transport == ipc::TransportKind::kTcp) {
    if (args.procs < 2) {
      std::fprintf(stderr, "--transport tcp needs --procs >= 2\n");
      return 2;
    }
    return run_tcp(args);
  }

  if (args.transport == ipc::TransportKind::kLoopback || args.procs == 1) {
    // Threads-as-ranks (the sanitizer leg): same protocol, no fork.
    const auto data = make_data(args);
    const auto ref = gbdt::Trainer(make_config(args).trainer).train(data);
    ipc::InProcessWorld world(ipc::TransportKind::kLoopback, args.procs);
    const auto got = gbdt::train_in_process(make_config(args), world, data);
    if (!verify(got, ref, data, 0)) return 1;
    std::printf("multi_process OK: transport=loopback(threads) procs=%u "
                "shards=%u -- bit-identical to in-process Trainer\n",
                args.procs, args.shards);
    return 0;
  }

  const std::string path = ipc::unique_ipc_path(
      args.transport == ipc::TransportKind::kFile ? "mp-spool" : "mp-sock");

  // Fork the worker ranks *before* any thread exists in this process.
  std::vector<pid_t> children;
  for (std::uint32_t rank = 1; rank < args.procs; ++rank) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      std::exit(run_rank(args, path, rank));
    }
    children.push_back(pid);
  }

  int status = run_rank(args, path, /*rank=*/0);
  for (const pid_t pid : children) {
    int child_status = 0;
    if (::waitpid(pid, &child_status, 0) < 0 ||
        !WIFEXITED(child_status) || WEXITSTATUS(child_status) != 0) {
      std::fprintf(stderr, "worker process %d failed\n", pid);
      status = 1;
    }
  }
  std::error_code ec;  // scratch cleanup is best effort
  std::filesystem::remove_all(path, ec);
  return status;
}
