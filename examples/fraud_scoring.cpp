// Fraud scoring: an end-to-end batch-analytics scenario of the kind the
// paper's introduction motivates (ad-click / fraud prediction on tabular
// data with skewed categorical fields).
//
// The example:
//   1. synthesizes a transactions table (categorical merchant/country/...
//      fields with Zipf-skewed frequencies, numeric amount features),
//   2. trains a 200-tree GBDT, saving/reloading it through the model file
//      format to mimic a train-then-deploy pipeline,
//   3. scores the full table on the functional BU-array inference engine
//      and cross-checks against the software predictor,
//   4. reports accuracy/AUC and the projected batch-inference time on
//      Booster vs an ideal 32-core host (paper Fig 13's setting).
#include <cstdio>

#include "baselines/cpu_like.h"
#include "core/booster_model.h"
#include "core/engines.h"
#include "gbdt/metrics.h"
#include "gbdt/model_io.h"
#include "util/table.h"
#include "workloads/runner.h"
#include "workloads/synth.h"

int main() {
  using namespace booster;

  // 1. A fraud-shaped table: 6 skewed categorical fields, 4 numeric.
  workloads::DatasetSpec spec;
  spec.name = "fraud";
  spec.description = "Synthetic card-transaction table";
  spec.nominal_records = 50'000'000;  // production-scale batch
  spec.numeric_fields = 4;
  spec.categorical_cardinalities = {500, 200, 60, 30, 12, 5};
  spec.categorical_skew = 1.4;
  spec.missing_rate = 0.03;
  spec.loss = "logistic";
  spec.label_structure = workloads::LabelStructure::kCategorical;
  spec.label_noise = 0.4;

  workloads::RunnerConfig runner;
  runner.sim_records = 20000;
  runner.sim_trees = 24;
  runner.nominal_trees = 200;
  std::printf("Synthesizing %llu-record sample and training %u trees...\n",
              static_cast<unsigned long long>(runner.sim_records),
              runner.sim_trees);
  const auto result = workloads::run_workload(spec, runner);

  // 2. Deploy cycle: save to disk, reload.
  const std::string model_path = "/tmp/fraud_model.booster";
  if (!gbdt::save_model_file(result.train.model, model_path)) {
    std::fprintf(stderr, "failed to save model\n");
    return 1;
  }
  const gbdt::Model deployed = gbdt::load_model_file(model_path);
  std::printf("Model round-tripped through %s (%u trees)\n",
              model_path.c_str(), deployed.num_trees());

  // 3. Score on the BU-array inference engine; verify against software.
  const core::InferenceEngine engine{core::BoosterConfig{}};
  const auto scored = engine.run(result.binned, deployed);
  double max_err = 0.0;
  for (std::uint64_t r = 0; r < result.binned.num_records(); ++r) {
    const double sw = deployed.predict_raw(result.binned, r);
    max_err = std::max(max_err, std::abs(scored.raw_predictions[r] - sw));
  }
  std::printf("BU-array vs software predictions: max |diff| = %.2e over %llu"
              " records (%u tree replicas)\n",
              max_err,
              static_cast<unsigned long long>(result.binned.num_records()),
              scored.replicas);

  // 4. Quality + projected batch-inference performance at nominal scale.
  std::printf("Training-sample AUC: %.3f, accuracy: %.3f\n",
              gbdt::auc(deployed, result.binned),
              gbdt::accuracy(deployed, result.binned));

  perf::InferenceSpec batch;
  batch.records = static_cast<double>(spec.nominal_records);
  batch.trees = deployed.num_trees();
  batch.max_depth = deployed.max_tree_depth();
  batch.avg_path_length = deployed.avg_path_length(result.binned);
  batch.record_bytes = result.info.record_bytes;

  const core::BoosterModel booster;
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  util::Table table({"system", "batch latency", "records/s"});
  const double t_cpu = cpu.inference_cost(batch);
  const double t_bst = booster.inference_cost(batch);
  table.add_row({"Ideal 32-core", util::fmt_time(t_cpu),
                 util::fmt(batch.records / t_cpu / 1e6, 1) + "M"});
  table.add_row({"Booster", util::fmt_time(t_bst),
                 util::fmt(batch.records / t_bst / 1e6, 1) + "M"});
  table.print();
  std::printf("Booster batch-inference speedup: %.1fx\n", t_cpu / t_bst);
  return 0;
}
