// Flight-delay prediction: reproduces the paper's Flight workload shape
// end to end, exercising the CSV ingestion path a downstream user would
// take with their own table (export -> reload -> bin -> train -> evaluate),
// then compares training time across all simulated systems.
#include <cstdio>

#include "baselines/cpu_like.h"
#include "baselines/inter_record.h"
#include "core/booster_model.h"
#include "gbdt/metrics.h"
#include "gbdt/trainer.h"
#include "util/table.h"
#include "workloads/csv.h"
#include "workloads/runner.h"
#include "workloads/synth.h"

int main() {
  using namespace booster;

  // 1. Synthesize a Flight-shaped table and round-trip it through CSV --
  //    the ingestion path for user-provided data.
  const auto spec = workloads::spec_by_name("Flight");
  const auto raw = workloads::synthesize(spec, 20000, /*seed=*/7);
  const std::string csv_path = "/tmp/flight_sample.csv";
  if (!workloads::save_csv_file(raw, csv_path)) {
    std::fprintf(stderr, "failed to write %s\n", csv_path.c_str());
    return 1;
  }
  const gbdt::Dataset reloaded = workloads::load_csv_file(csv_path);
  std::printf("CSV round trip: %llu records, %u fields (%s)\n",
              static_cast<unsigned long long>(reloaded.num_records()),
              reloaded.num_fields(), csv_path.c_str());

  // 2. Bin and train on the reloaded table.
  const auto binned = gbdt::Binner().bin(reloaded);
  gbdt::TrainerConfig tcfg;
  tcfg.num_trees = 48;
  tcfg.max_depth = 6;
  tcfg.loss = spec.loss;
  trace::StepTrace trace;
  trace::WorkloadInfo info;
  const auto trained = gbdt::Trainer(tcfg).train(binned, &trace, &info);
  std::printf("Trained %u trees; AUC on training sample: %.3f\n",
              trained.model.num_trees(), gbdt::auc(trained.model, binned));

  // 3. Scale the trace to the paper's nominal Flight workload and compare
  //    all systems (Fig 7 for one benchmark).
  trace.set_scale(static_cast<double>(spec.nominal_records) /
                  static_cast<double>(binned.num_records()));
  trace.set_repeat(500.0 / tcfg.num_trees);
  info.name = spec.name;
  info.nominal_records = spec.nominal_records;
  info.trees = 500;

  const baselines::CpuLikeModel seq(baselines::sequential_cpu_params());
  const baselines::CpuLikeModel cpu(baselines::ideal_cpu_params());
  const baselines::CpuLikeModel gpu(baselines::ideal_gpu_params());
  baselines::InterRecordParams ir_params;
  ir_params.copies = spec.ir_copies >= 0
                         ? static_cast<std::uint32_t>(spec.ir_copies)
                         : 0;
  const baselines::InterRecordModel ir(ir_params);
  const core::BoosterModel booster;

  const double base = cpu.train_cost(trace, info).total();
  util::Table table({"system", "training time", "speedup vs Ideal 32-core"});
  auto add = [&](const std::string& name, double seconds) {
    table.add_row({name, util::fmt_time(seconds), util::fmt_x(base / seconds)});
  };
  add("Sequential CPU", seq.train_cost(trace, info).total());
  add("Ideal 32-core", base);
  add("Ideal GPU", gpu.train_cost(trace, info).total());
  add("Inter-Record", ir.train_cost(trace, info).total());
  add("Booster", booster.train_cost(trace, info).total());
  table.print();
  return 0;
}
